#include "obs/diff/teldoc.hh"

#include <algorithm>

#include "core/json.hh"
#include "core/logging.hh"

namespace nvsim::obs
{

namespace
{

constexpr std::size_t kF = kNumPerfFields;

/** Counter object {"name":value,...} into a dense PerfField array. */
void
readCounterObject(const JsonValue &obj, const std::string &path,
                  double *out)
{
    for (const auto &[key, value] : obj.members()) {
        std::size_t f = perfFieldIndex(key);
        if (f == kF)
            fatal("%s: unknown counter '%s' (schema drift?)",
                  path.c_str(), key.c_str());
        out[f] = value.asNumber();
    }
}

LatencySketch
readLatency(const JsonValue &lat, const std::string &path)
{
    const JsonValue *sketch = lat.find("sketch");
    if (!sketch)
        return {};  // pre-sketch artifact: quantiles only, no buckets
    std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;
    for (const JsonValue &pair : sketch->items()) {
        if (pair.items().size() != 2)
            fatal("%s: sketch bucket entry is not a [bucket, count] "
                  "pair",
                  path.c_str());
        buckets.emplace_back(
            static_cast<std::uint32_t>(pair.items()[0].asUint()),
            pair.items()[1].asUint());
    }
    auto u64 = [&](const char *key) -> std::uint64_t {
        const JsonValue *v = lat.find(key);
        return v ? v->asUint() : 0;
    };
    return LatencySketch::fromSparse(buckets, u64("min_ns"),
                                     u64("max_ns"), u64("sum_ns"));
}

TelemetryWindow
readWindow(const JsonValue &win, unsigned channels,
           const std::string &path)
{
    TelemetryWindow w;
    const JsonValue *index = win.find("index");
    if (!index)
        fatal("%s: window without an index", path.c_str());
    w.index = static_cast<std::int64_t>(index->asNumber());
    if (const JsonValue *v = win.find("active_s"))
        w.activeS = v->asNumber();
    if (const JsonValue *v = win.find("epochs"))
        w.epochs = v->asNumber();
    if (const JsonValue *v = win.find("demand_bytes"))
        w.demandBytes = v->asNumber();
    if (const JsonValue *counters = win.find("counters"))
        readCounterObject(*counters, path, w.all.data());
    w.perChannel.assign(static_cast<std::size_t>(channels) * kF, 0.0);
    if (const JsonValue *per = win.find("per_channel")) {
        if (per->items().size() != channels)
            fatal("%s: window %lld has %zu per-channel blocks for %u "
                  "channels",
                  path.c_str(), static_cast<long long>(w.index),
                  per->items().size(), channels);
        for (std::size_t c = 0; c < per->items().size(); ++c)
            readCounterObject(per->items()[c], path,
                              w.perChannel.data() + c * kF);
    }
    if (const JsonValue *lat = win.find("latency"))
        w.sketch = readLatency(*lat, path);
    return w;
}

RunManifest
readManifest(const JsonValue &man, std::string *schema_out)
{
    RunManifest m;
    if (const JsonValue *v = man.find("schema"))
        *schema_out = v->asString();
    if (const JsonValue *v = man.find("bench"))
        m.bench = v->asString();
    if (const JsonValue *v = man.find("flags")) {
        for (const JsonValue &f : v->items())
            m.flags.push_back(f.asString());
    }
    if (const JsonValue *v = man.find("causal_seed"))
        m.causalSeed = v->asUint();
    if (const JsonValue *v = man.find("host_calibration"))
        m.hostCalibration = v->asNumber();
    return m;
}

ConfigDigest
readConfig(const JsonValue &cfg)
{
    ConfigDigest d;
    if (const JsonValue *v = cfg.find("config_hash"))
        d.hash = v->asString();
    if (const JsonValue *v = cfg.find("mode"))
        d.mode = v->asString();
    if (const JsonValue *v = cfg.find("scale"))
        d.scale = v->asUint();
    return d;
}

} // namespace

std::size_t
perfFieldIndex(const std::string &name)
{
    for (std::size_t f = 0; f < kF; ++f) {
        if (name == PerfCounters::fieldName(f))
            return f;
    }
    return kF;
}

const TelemetryWindow *
TelRun::findWindow(std::int64_t index) const
{
    auto it = std::lower_bound(
        windows.begin(), windows.end(), index,
        [](const TelemetryWindow &w, std::int64_t i) {
            return w.index < i;
        });
    return it != windows.end() && it->index == index ? &*it : nullptr;
}

const TelRun *
TelDoc::findRun(const std::string &label) const
{
    for (const TelRun &r : runs) {
        if (r.label == label)
            return &r;
    }
    return nullptr;
}

TelDoc
loadTelemetryDoc(const std::string &path)
{
    JsonValue root = parseJsonFile(path);
    TelDoc doc;
    doc.path = path;
    if (const JsonValue *v = root.find("schema"))
        doc.schema = v->asString();
    if (doc.schema != "nvsim-telemetry-v1")
        fatal("%s: not an nvsim-telemetry-v1 document (schema '%s')",
              path.c_str(), doc.schema.c_str());
    if (const JsonValue *v = root.find("window_s"))
        doc.windowS = v->asNumber();
    if (const JsonValue *man = root.find("manifest")) {
        doc.manifest = readManifest(*man, &doc.manifestSchema);
        doc.hasManifest = true;
    }

    const JsonValue *runs = root.find("runs");
    if (!runs)
        fatal("%s: no \"runs\" array", path.c_str());
    for (const JsonValue &entry : runs->items()) {
        TelRun run;
        if (const JsonValue *v = entry.find("label"))
            run.label = v->asString();
        const JsonValue *tel = entry.find("telemetry");
        if (!tel)
            fatal("%s: run '%s' has no \"telemetry\" object",
                  path.c_str(), run.label.c_str());
        if (const JsonValue *v = tel->find("channels"))
            run.channels = static_cast<unsigned>(v->asUint());
        if (const JsonValue *v = tel->find("window_s"))
            run.windowS = v->asNumber();
        if (const JsonValue *v = tel->find("windows_dropped"))
            run.windowsDropped = v->asUint();
        if (const JsonValue *v = tel->find("config"))
            run.config = readConfig(*v);
        if (const JsonValue *v = tel->find("totals"))
            readCounterObject(*v, path, run.totals.data());
        if (const JsonValue *v = tel->find("latency"))
            run.latency = readLatency(*v, path);
        if (const JsonValue *ws = tel->find("windows")) {
            for (const JsonValue &win : ws->items())
                run.windows.push_back(
                    readWindow(win, run.channels, path));
        }
        doc.runs.push_back(std::move(run));
    }
    return doc;
}

} // namespace nvsim::obs
