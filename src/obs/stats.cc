#include "obs/stats.hh"

#include "core/logging.hh"
#include "obs/json.hh"

namespace nvsim::obs
{

Group &
Group::child(const std::string &name)
{
    for (auto &c : children_) {
        if (c->name() == name)
            return *c;
    }
    children_.push_back(std::make_unique<Group>(name));
    return *children_.back();
}

void
Group::label(const std::string &key, const std::string &value)
{
    for (auto &kv : labels_) {
        if (kv.first == key) {
            kv.second = value;
            return;
        }
    }
    labels_.emplace_back(key, value);
}

Stat &
Group::add(const std::string &name, const std::string &desc,
           StatKind kind)
{
    if (find(name))
        panic("stat '%s' registered twice in group '%s'", name.c_str(),
              name_.c_str());
    Stat s;
    s.name = name;
    s.desc = desc;
    s.kind = kind;
    stats_.push_back(std::move(s));
    return stats_.back();
}

Scalar &
Group::scalar(const std::string &name, const std::string &desc)
{
    Stat &s = add(name, desc, StatKind::Scalar);
    s.scalar = std::make_unique<Scalar>();
    return *s.scalar;
}

void
Group::formula(const std::string &name, const std::string &desc,
               std::function<double()> fn)
{
    Stat &s = add(name, desc, StatKind::Formula);
    s.formula = std::move(fn);
}

Log2Histogram &
Group::histogram(const std::string &name, const std::string &desc,
                 unsigned num_buckets, unsigned linear)
{
    Stat &s = add(name, desc, StatKind::Histogram);
    s.histogram = std::make_unique<Log2Histogram>(num_buckets, linear);
    return *s.histogram;
}

const Stat *
Group::find(const std::string &name) const
{
    for (const Stat &s : stats_) {
        if (s.name == name)
            return &s;
    }
    return nullptr;
}

void
Group::dumpJson(JsonWriter &json) const
{
    for (const Stat &s : stats_) {
        switch (s.kind) {
          case StatKind::Scalar:
            json.field(s.name, s.scalar->value());
            break;
          case StatKind::Formula:
            json.field(s.name, s.formula());
            break;
          case StatKind::Histogram: {
            const Log2Histogram &h = *s.histogram;
            json.beginObject(s.name);
            json.field("count", h.count());
            json.field("sum", h.sum());
            json.field("min", h.min());
            json.field("max", h.max());
            json.field("mean", h.mean());
            json.beginArray("buckets");
            for (unsigned i = 0; i < h.numBuckets(); ++i) {
                if (h.bucketCount(i) == 0)
                    continue;  // sparse: zero buckets add no information
                json.beginObject();
                json.field("lo", h.bucketLow(i));
                if (h.bucketHigh(i) != UINT64_MAX)
                    json.field("hi", h.bucketHigh(i));
                json.field("count", h.bucketCount(i));
                json.endObject();
            }
            json.endArray();
            json.endObject();
            break;
          }
        }
    }
    for (const auto &c : children_) {
        json.beginObject(c->name());
        c->dumpJson(json);
        json.endObject();
    }
}

void
Registry::dumpJson(std::ostream &out) const
{
    JsonWriter json(out);
    json.beginObject();
    root_.dumpJson(json);
    json.endObject();
    out << '\n';
}

} // namespace nvsim::obs
