/**
 * @file
 * Log2-bucketed histogram for the observability layer.
 *
 * Bucket layout: the first `linear` buckets hold exact values
 * 0..linear-1; beyond that each bucket spans one power of two, so the
 * histogram covers many decades in O(tens) of buckets — the classic
 * latency-histogram layout. The last bucket is an open-ended overflow.
 * `linear` must be a power of two; the default (2) gives the plain
 * log2 layout 0, 1, [2,4), [4,8), ... Raising it (e.g. 16 for
 * device-access counts) keeps small integer values exact.
 */

#ifndef NVSIM_OBS_HISTOGRAM_HH
#define NVSIM_OBS_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace nvsim::obs
{

/** Log2-bucketed histogram over non-negative integer samples. */
class Log2Histogram
{
  public:
    explicit Log2Histogram(unsigned num_buckets = 32, unsigned linear = 2);

    /** Record @p count occurrences of @p value. */
    void sample(std::uint64_t value, std::uint64_t count = 1);

    /** Bucket index @p value falls into. */
    unsigned bucketFor(std::uint64_t value) const;

    /** Inclusive lower bound of bucket @p i. */
    std::uint64_t bucketLow(unsigned i) const;

    /**
     * Exclusive upper bound of bucket @p i; UINT64_MAX for the
     * overflow bucket.
     */
    std::uint64_t bucketHigh(unsigned i) const;

    /** Element-wise merge; the layouts must match (panics otherwise). */
    void merge(const Log2Histogram &o);

    void reset();

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    /** Smallest / largest sampled value (0 when empty). */
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    double mean() const;

    unsigned numBuckets() const
    {
        return static_cast<unsigned>(buckets_.size());
    }
    unsigned linear() const { return linear_; }
    std::uint64_t bucketCount(unsigned i) const { return buckets_[i]; }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }

    /** Compact one-line summary for console output. */
    std::string summary() const;

  private:
    unsigned linear_;
    unsigned linearLog2_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

} // namespace nvsim::obs

#endif // NVSIM_OBS_HISTOGRAM_HH
