#include "obs/session.hh"

#include <cstdio>
#include <fstream>

#include <sstream>

#include "core/hostprof.hh"
#include "core/logging.hh"
#include "obs/causal.hh"
#include "obs/diff/anomaly.hh"
#include "obs/json.hh"

namespace nvsim::obs
{

namespace
{

/** Strip trailing whitespace so raw JSON embeds cleanly inline. */
std::string
rstrip(std::string s)
{
    while (!s.empty() &&
           (s.back() == '\n' || s.back() == '\r' || s.back() == ' '))
        s.pop_back();
    return s;
}

} // namespace

Session::Session(SessionOptions opts)
    : opts_(std::move(opts)), telSession_(opts_.telemetry)
{
    if (!opts_.perfettoPath.empty()) {
        tracer_.nameTrack(Track::Runs, "runs");
        tracer_.nameTrack(Track::Epochs, "epochs");
        tracer_.nameTrack(Track::Kernels, "kernels");
        tracer_.nameTrack(Track::Dma, "dma");
        if (opts_.causal()) {
            tracer_.nameTrack(Track::CausalDemand, "causal demand");
            tracer_.nameTrack(Track::CausalDevices, "causal devices");
        }
        if (opts_.telemetry.any())
            tracer_.nameTrack(Track::Anomalies, "anomalies");
    }
}

Session::~Session()
{
    endRun();
    writeFiles(true);
}

Observer *
Session::beginRun(const std::string &label)
{
    // Telemetry-only sessions run parallel sweeps; a shared Observer
    // would race, so only serial (observer-output) sessions get one.
    if (!opts_.any())
        return nullptr;
    endRun();
    current_ = std::make_unique<Observer>(label);
    if (!opts_.heatmapPath.empty())
        current_->enableHeatmap();
    if (!opts_.perfettoPath.empty()) {
        // Each run's simulated clock starts at zero; lay runs end to
        // end on the shared timeline.
        runStart_ = tracer_.horizon();
        tracer_.setTimeBase(runStart_);
        current_->setTracer(&tracer_);
    }
    if (opts_.causal()) {
        CausalOptions copts;
        copts.samplePeriod = opts_.causalSamplePeriod;
        copts.seed = opts_.causalSeed;
        copts.flowIdBase = nextFlowId_;
        current_->enableCausal(copts);
    }
    return current_.get();
}

TelemetryRun *
Session::beginTelemetryRun(const std::string &label)
{
    TelemetryRun *tel = telSession_.beginRun(label);
    if (!tel)
        return nullptr;
    // In serial mode the open Observer exports the run's summary
    // quantiles as stats, and endRun() renders the windows onto the
    // Perfetto timeline. In parallel mode workers own their runs
    // privately; the session only touches them at write time.
    if (current_ && current_->runLabel() == label) {
        current_->attachTelemetry(tel);
        currentTel_ = tel;
    }
    return tel;
}

void
Session::endRun()
{
    if (!current_)
        return;
    if (currentTel_) {
        currentTel_->finish();
        if (!opts_.perfettoPath.empty()) {
            // One counter sample per window, stamped at window end on
            // the run's own time base (still set from beginRun()).
            double w = currentTel_->windowSeconds();
            for (const TelemetryWindow &win : currentTel_->windows()) {
                double t = static_cast<double>(win.index + 1) * w;
                double v = 0;
                if (TelemetryRun::windowMetric(win, "eff_gbs", &v))
                    tracer_.counter("tel_eff_GBps", t, v);
                if (TelemetryRun::windowMetric(win, "p99_ns", &v))
                    tracer_.counter("tel_p99_ns", t, v);
            }
            // Detector firings as instants at the window end, so a
            // throttle onset or refresh storm is visible in the UI
            // next to the counter track that moved.
            AnomalyOptions aopts;
            aopts.z = opts_.telemetry.anomalyZ;
            AnomalyReport report =
                detectAnomalies(*currentTel_, aopts);
            for (const Anomaly &a : report.anomalies) {
                double t = static_cast<double>(a.window + 1) * w;
                tracer_.instant(Track::Anomalies,
                                "anomaly:" + a.metric, t);
            }
        }
        currentTel_ = nullptr;
    }
    current_->seal();
    buildInfo_.emplace_back(current_->runLabel(),
                            current_->provenance());
    runsJson_.emplace_back(current_->runLabel(),
                           rstrip(current_->statsJson()));
    mergePrometheus(promFamilies_, current_->promFamilies());
    if (const CausalTracer *causal = current_->causal()) {
        causal->foldedLines(foldedLines_, current_->runLabel());
        std::ostringstream os;
        causal->dumpJson(os);
        causalRuns_.emplace_back(current_->runLabel(), os.str());
        nextFlowId_ += causal->flowsEmitted();
    }
    if (const SetProfiler *prof = current_->setProfiler()) {
        prof->appendCsvRows(current_->runLabel(), heatRows_);
        if (opts_.topSets > 0)
            std::fputs(prof->report(opts_.topSets).c_str(), stdout);
    }
    if (!opts_.perfettoPath.empty()) {
        double end = tracer_.horizon();
        if (end > runStart_) {
            double base = tracer_.timeBase();
            tracer_.setTimeBase(0);
            tracer_.span(Track::Runs, current_->runLabel(), runStart_,
                         end);
            tracer_.setTimeBase(base);
        }
    }
    // Keep the sealed observer alive: a MemorySystem still attached to
    // it may detach (a sealed no-op) from its destructor later.
    done_.push_back(std::move(current_));
}

void
Session::write()
{
    endRun();
    writeFiles(false);
}

void
Session::writeFiles(bool from_destructor)
{
    if (written_ || !enabled())
        return;
    written_ = true;
    HostPhase phase("obs.write");

    telSession_.writeFiles(from_destructor);
    if (!opts_.any())
        return;

    auto open = [&](const std::string &path,
                    std::ofstream &ofs) -> bool {
        ofs.open(path, std::ios::out | std::ios::trunc);
        if (ofs)
            return true;
        if (from_destructor) {
            warn("obs: could not open '%s' for writing", path.c_str());
            return false;
        }
        fatal("obs: could not open '%s' for writing", path.c_str());
    };

    if (!opts_.statsJsonPath.empty()) {
        std::ofstream ofs;
        if (open(opts_.statsJsonPath, ofs)) {
            ofs << "{\"schema\":\"nvsim-stats-v1\",\"runs\":[";
            for (std::size_t i = 0; i < runsJson_.size(); ++i) {
                if (i > 0)
                    ofs << ',';
                ofs << "\n{\"label\":\""
                    << jsonEscape(runsJson_[i].first)
                    << "\",\"stats\":" << runsJson_[i].second << '}';
            }
            ofs << "\n]}\n";
            inform("obs: wrote stats JSON to %s",
                   opts_.statsJsonPath.c_str());
        }
    }

    if (!opts_.statsPromPath.empty()) {
        std::ofstream ofs;
        if (open(opts_.statsPromPath, ofs)) {
            // Info-style provenance gauge: value is the constant 1,
            // the payload is the labels (Prometheus convention for
            // build/version metadata; prom_lint.py checks the shape).
            const RunManifest &m = opts_.telemetry.manifest;
            PromFamily info;
            info.name = "nvsim_build_info";
            info.type = "gauge";
            info.help = "run provenance manifest (constant 1; the "
                        "payload is the labels)";
            for (const auto &[label, digest] : buildInfo_) {
                PromSample s;
                s.name = info.name;
                s.labels = strprintf(
                    "run=\"%s\",bench=\"%s\",config_hash=\"%s\","
                    "mode=\"%s\",scale=\"%llu\",seed=\"%llu\","
                    "schema=\"%s\"",
                    promEscapeLabel(label).c_str(),
                    promEscapeLabel(m.bench).c_str(),
                    promEscapeLabel(digest.hash).c_str(),
                    promEscapeLabel(digest.mode).c_str(),
                    static_cast<unsigned long long>(digest.scale),
                    static_cast<unsigned long long>(m.causalSeed),
                    RunManifest::kSchema);
                s.value = 1;
                info.samples.push_back(std::move(s));
            }
            std::vector<PromFamily> families;
            if (!info.samples.empty())
                families.push_back(std::move(info));
            mergePrometheus(families, promFamilies_);
            renderPrometheus(families, ofs);
            inform("obs: wrote Prometheus text to %s",
                   opts_.statsPromPath.c_str());
        }
    }

    if (!opts_.perfettoPath.empty()) {
        std::ofstream ofs;
        if (open(opts_.perfettoPath, ofs)) {
            tracer_.setMetadataJson(opts_.telemetry.manifest.json(
                opts_.telemetry.windowSeconds, "nvsim-telemetry-v1"));
            tracer_.writeJson(ofs);
            if (tracer_.dropped() > 0)
                warn("obs: trace event cap reached; dropped %zu events",
                     tracer_.dropped());
            inform("obs: wrote trace to %s (load in ui.perfetto.dev)",
                   opts_.perfettoPath.c_str());
        }
    }

    if (!opts_.heatmapPath.empty()) {
        std::ofstream ofs;
        if (open(opts_.heatmapPath, ofs)) {
            ofs << "run,set,hits,misses,evictions\n";
            for (const std::string &row : heatRows_)
                ofs << row << '\n';
            inform("obs: wrote set heatmap to %s",
                   opts_.heatmapPath.c_str());
        }
    }

    if (!opts_.causalJsonPath.empty()) {
        std::ofstream ofs;
        if (open(opts_.causalJsonPath, ofs)) {
            ofs << "{\"schema\":\"nvsim-causal-v1\",\"sample_period\":"
                << opts_.causalSamplePeriod
                << ",\"seed\":" << opts_.causalSeed << ",\"runs\":[";
            for (std::size_t i = 0; i < causalRuns_.size(); ++i) {
                if (i > 0)
                    ofs << ',';
                ofs << "\n{\"label\":\""
                    << jsonEscape(causalRuns_[i].first)
                    << "\",\"causal\":" << causalRuns_[i].second
                    << '}';
            }
            ofs << "\n]}\n";
            inform("obs: wrote causal attribution to %s",
                   opts_.causalJsonPath.c_str());
        }
    }

    if (!opts_.foldedPath.empty()) {
        std::ofstream ofs;
        if (open(opts_.foldedPath, ofs)) {
            for (const std::string &line : foldedLines_)
                ofs << line << '\n';
            inform("obs: wrote folded stacks to %s "
                   "(render with scripts/plot_traces.py)",
                   opts_.foldedPath.c_str());
        }
    }
}

} // namespace nvsim::obs
