/**
 * @file
 * Set-conflict profiler for the direct-mapped 2LM DRAM cache.
 *
 * The paper's first key limitation of the hardware-managed cache is
 * the inflexibility of direct mapping: two hot lines that alias to
 * the same set evict each other on every access. Aggregate miss
 * counters show *that* the cache thrashes; this profiler shows
 * *where* — per-set hit/miss/eviction counts plus a top-N hottest-set
 * report that makes the conflict structure directly visible.
 *
 * One profiler instance is shared by every channel's cache (all
 * channels have identical geometry and see channel-local addresses),
 * so counts are sums across channels. Hot-path cost is one pointer
 * test plus a vector increment.
 */

#ifndef NVSIM_OBS_HEATMAP_HH
#define NVSIM_OBS_HEATMAP_HH

#include <cstdint>
#include <string>
#include <vector>

namespace nvsim::obs
{

/** Per-set access profile of a DRAM cache. */
class SetProfiler
{
  public:
    /**
     * Largest set count the profiler will track. At the default
     * unscaled geometry (512 Mi sets/channel) the arrays would cost
     * gigabytes; profiling is meant for scaled runs.
     */
    static constexpr std::uint64_t kMaxSets = 1ull << 24;

    explicit SetProfiler(std::uint64_t num_sets);

    void noteHit(std::uint64_t set) { ++hits_[set]; }
    void noteMiss(std::uint64_t set) { ++misses_[set]; }
    void noteEviction(std::uint64_t set) { ++evictions_[set]; }

    std::uint64_t numSets() const { return hits_.size(); }
    std::uint64_t hits(std::uint64_t set) const { return hits_[set]; }
    std::uint64_t misses(std::uint64_t set) const
    {
        return misses_[set];
    }
    std::uint64_t evictions(std::uint64_t set) const
    {
        return evictions_[set];
    }

    /** Merge another profiler of identical geometry (panics else). */
    void merge(const SetProfiler &o);

    void reset();

    struct HotSet
    {
        std::uint64_t set = 0;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t evictions = 0;

        /** Conflict pressure used for the hot ranking. */
        std::uint64_t heat() const { return misses + evictions; }
    };

    /** The @p n sets with the most misses+evictions, hottest first. */
    std::vector<HotSet> topSets(std::size_t n) const;

    /** Console table of the top-@p n hottest sets. */
    std::string report(std::size_t n = 16) const;

    /**
     * Append all touched sets to @p rows as CSV lines
     * `run,set,hits,misses,evictions` (untouched sets are omitted —
     * the heatmap is typically sparse).
     */
    void appendCsvRows(const std::string &run_label,
                       std::vector<std::string> &rows) const;

  private:
    std::vector<std::uint64_t> hits_;
    std::vector<std::uint64_t> misses_;
    std::vector<std::uint64_t> evictions_;
};

} // namespace nvsim::obs

#endif // NVSIM_OBS_HEATMAP_HH
