#include "obs/manifest.hh"

#include <cstdlib>
#include <sstream>

#include "core/logging.hh"
#include "obs/json.hh"

namespace nvsim::obs
{

std::uint64_t
fnv1a64(const std::string &text)
{
    std::uint64_t h = 14695981039346656037ull;
    for (unsigned char c : text) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

std::string
digestHex(std::uint64_t digest)
{
    return strprintf("0x%016llx",
                     static_cast<unsigned long long>(digest));
}

void
RunManifest::readEnvironment()
{
    const char *cal = std::getenv("NVSIM_HOST_CALIBRATION");
    if (!cal || !*cal)
        return;
    char *end = nullptr;
    double v = std::strtod(cal, &end);
    if (end == cal || *end != '\0' || v < 0) {
        warn("manifest: ignoring malformed NVSIM_HOST_CALIBRATION "
             "'%s' (want seconds as a non-negative number)",
             cal);
        return;
    }
    hostCalibration = v;
}

std::string
RunManifest::json(double window_s,
                  const std::string &telemetry_schema) const
{
    std::ostringstream os;
    os << "{\"schema\":\"" << kSchema << "\",\"telemetry_schema\":\""
       << jsonEscape(telemetry_schema) << "\",\"bench\":\""
       << jsonEscape(bench) << "\",\"flags\":[";
    for (std::size_t i = 0; i < flags.size(); ++i)
        os << (i ? "," : "") << '"' << jsonEscape(flags[i]) << '"';
    os << "],\"causal_seed\":" << causalSeed
       << ",\"window_s\":" << strprintf("%.9g", window_s)
       << ",\"host_calibration\":"
       << strprintf("%.9g", hostCalibration) << '}';
    return os.str();
}

std::string
ConfigDigest::json() const
{
    std::ostringstream os;
    os << "{\"config_hash\":\"" << jsonEscape(hash)
       << "\",\"mode\":\"" << jsonEscape(mode)
       << "\",\"scale\":" << scale << '}';
    return os.str();
}

} // namespace nvsim::obs
