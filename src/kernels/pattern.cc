#include "kernels/pattern.hh"

#include "core/logging.hh"

namespace nvsim
{

const char *
accessPatternName(AccessPattern pattern)
{
    return pattern == AccessPattern::Sequential ? "sequential" : "random";
}

OffsetSequence::OffsetSequence(AccessPattern pattern, std::uint64_t count,
                               std::uint64_t seed)
    : pattern_(pattern), count_(count), seed_(seed ? seed : 1),
      lfsr_(count > 1 ? Lfsr::widthFor(count) : 2, seed_)
{
    if (count_ == 0)
        fatal("OffsetSequence needs at least one granule");
}

std::optional<std::uint64_t>
OffsetSequence::next()
{
    if (emitted_ >= count_)
        return std::nullopt;

    if (pattern_ == AccessPattern::Sequential) {
        ++emitted_;
        return cursor_++;
    }

    // LFSR states cover [1, 2^w); subtracting one maps them onto
    // [0, 2^w - 1). Values beyond the slice are skipped, so each index
    // in [0, count) appears exactly once per pass.
    for (;;) {
        std::uint64_t idx = lfsr_.next() - 1;
        if (idx < count_) {
            ++emitted_;
            return idx;
        }
    }
}

std::size_t
OffsetSequence::nextBlock(std::uint64_t *out, std::size_t max)
{
    std::size_t got = 0;
    if (pattern_ == AccessPattern::Sequential) {
        while (got < max && emitted_ < count_) {
            out[got++] = cursor_++;
            ++emitted_;
        }
        return got;
    }
    while (got < max && emitted_ < count_) {
        for (;;) {
            std::uint64_t idx = lfsr_.next() - 1;
            if (idx < count_) {
                out[got++] = idx;
                ++emitted_;
                break;
            }
        }
    }
    return got;
}

void
OffsetSequence::reset()
{
    emitted_ = 0;
    cursor_ = 0;
    lfsr_ = Lfsr(count_ > 1 ? Lfsr::widthFor(count_) : 2, seed_);
}

} // namespace nvsim
