/**
 * @file
 * Microbenchmark kernels (Section III-B of the paper).
 *
 * Read-only, write-only and read-modify-write loops over an array,
 * partitioned evenly across threads, with sequential or LFSR
 * pseudo-random iteration and 64-512 B access granularity. Stores can
 * be standard (RFO through the LLC) or nontemporal (bypass the LLC);
 * nontemporal stores "are critical for high NVRAM write bandwidth".
 */

#ifndef NVSIM_KERNELS_KERNELS_HH
#define NVSIM_KERNELS_KERNELS_HH

#include <string>

#include "imc/counters.hh"
#include "kernels/pattern.hh"
#include "sys/memsys.hh"

namespace nvsim
{

/** What the kernel loop does at each granule. */
enum class KernelOp : std::uint8_t {
    ReadOnly,
    WriteOnly,
    ReadModifyWrite,
};

const char *kernelOpName(KernelOp op);

/** One kernel run description. */
struct KernelConfig
{
    KernelOp op = KernelOp::ReadOnly;
    AccessPattern pattern = AccessPattern::Sequential;
    Bytes granularity = kLineSize;   //!< bytes per access (64..512)
    unsigned threads = 1;
    bool nontemporal = true;         //!< store flavor
    unsigned iterations = 1;         //!< full passes over the array
    std::uint64_t seed = 1;          //!< LFSR seed base
};

/** Measured result of one kernel run. */
struct KernelResult
{
    double seconds = 0;            //!< wall-clock (simulated)
    Bytes demandBytes = 0;         //!< bytes the loop touched
    Bytes arrayBytes = 0;          //!< region size x iterations
    double effectiveBandwidth = 0; //!< demandBytes / seconds (B/s)
    PerfCounters counters;         //!< uncore delta over the run

    /** DRAM read bandwidth etc., derived from counters (B/s). */
    double dramReadBandwidth() const;
    double dramWriteBandwidth() const;
    double nvramReadBandwidth() const;
    double nvramWriteBandwidth() const;

    std::string summary() const;
};

/**
 * Run one kernel over @p region. Threads are interleaved finely so
 * their access streams contend in the device buffers the way
 * simultaneous hardware threads would. The system is quiesced (LLC
 * flush + NVRAM buffer drain) at the end; counters and time are deltas
 * across the whole run.
 */
KernelResult runKernel(MemorySystem &sys, const Region &region,
                       const KernelConfig &config);

/**
 * Prime helpers for the 2LM miss-type experiments (Section IV-A):
 * a full read pass leaves the cached lines clean; a full write pass
 * leaves them dirty.
 */
void primeClean(MemorySystem &sys, const Region &region,
                unsigned threads = 8);
void primeDirty(MemorySystem &sys, const Region &region,
                unsigned threads = 8);

} // namespace nvsim

#endif // NVSIM_KERNELS_KERNELS_HH
