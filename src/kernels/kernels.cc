#include "kernels/kernels.hh"

#include <algorithm>
#include <string>
#include <vector>

#include "core/logging.hh"
#include "obs/observer.hh"

namespace nvsim
{

const char *
kernelOpName(KernelOp op)
{
    switch (op) {
      case KernelOp::ReadOnly:
        return "read_only";
      case KernelOp::WriteOnly:
        return "write_only";
      case KernelOp::ReadModifyWrite:
        return "read_modify_write";
    }
    return "unknown";
}

double
KernelResult::dramReadBandwidth() const
{
    return seconds > 0
               ? static_cast<double>(counters.dramRead * kLineSize) /
                     seconds
               : 0;
}

double
KernelResult::dramWriteBandwidth() const
{
    return seconds > 0
               ? static_cast<double>(counters.dramWrite * kLineSize) /
                     seconds
               : 0;
}

double
KernelResult::nvramReadBandwidth() const
{
    return seconds > 0
               ? static_cast<double>(counters.nvramRead * kLineSize) /
                     seconds
               : 0;
}

double
KernelResult::nvramWriteBandwidth() const
{
    return seconds > 0
               ? static_cast<double>(counters.nvramWrite * kLineSize) /
                     seconds
               : 0;
}

std::string
KernelResult::summary() const
{
    return strprintf(
        "effective %.2f GB/s | DRAM rd %.2f wr %.2f | NVRAM rd %.2f "
        "wr %.2f GB/s | amp %.2f",
        effectiveBandwidth / kGB, dramReadBandwidth() / kGB,
        dramWriteBandwidth() / kGB, nvramReadBandwidth() / kGB,
        nvramWriteBandwidth() / kGB, counters.amplification());
}

KernelResult
runKernel(MemorySystem &sys, const Region &region,
          const KernelConfig &config)
{
    if (config.granularity < kLineSize ||
        config.granularity % kLineSize != 0) {
        fatal("kernel granularity %llu must be a multiple of 64 B",
              static_cast<unsigned long long>(config.granularity));
    }
    unsigned threads = config.threads ? config.threads : 1;

    // Partition the region evenly across threads in whole granules.
    std::uint64_t total_granules = region.size / config.granularity;
    if (total_granules == 0)
        fatal("region '%s' smaller than one granule", region.name.c_str());
    std::uint64_t per_thread = total_granules / threads;
    if (per_thread == 0) {
        threads = static_cast<unsigned>(total_granules);
        per_thread = 1;
    }

    sys.setActiveThreads(threads);
    PerfCounters before = sys.counters();
    double t0 = sys.now();
    Bytes demand = 0;

    // Causal context: every IMC request issued below (including the
    // quiesce writebacks) is blamed on this kernel invocation.
    obs::ContextScope ctx(sys.observer(),
                          std::string(kernelOpName(config.op)) + " " +
                              accessPatternName(config.pattern) +
                              " on " + region.name);

    // Threads take turns of one TLB-page-sized block of granules each,
    // round-robin, so their streams still contend in the NVRAM buffers
    // at a realistic granularity (a real core write-combines and
    // prefetches within a page before another thread's traffic lands
    // between its lines). Sequential turns are consecutive granules and
    // collapse into one ranged access; random turns amortize the LFSR
    // skip loop through nextBlock().
    const Bytes kTurnBytes = 4 * kKiB;
    const std::uint64_t turn_granules = std::max<std::uint64_t>(
        1, kTurnBytes / config.granularity);
    const CpuOp store_op =
        config.nontemporal ? CpuOp::NtStore : CpuOp::Store;
    std::vector<std::uint64_t> idxbuf(turn_granules);

    for (unsigned iter = 0; iter < config.iterations; ++iter) {
        std::vector<OffsetSequence> seqs;
        seqs.reserve(threads);
        for (unsigned t = 0; t < threads; ++t) {
            seqs.emplace_back(config.pattern, per_thread,
                              config.seed + 977 * t + iter);
        }

        bool progress = true;
        while (progress) {
            progress = false;
            for (unsigned t = 0; t < threads; ++t) {
                std::size_t got =
                    seqs[t].nextBlock(idxbuf.data(), turn_granules);
                if (!got)
                    continue;
                progress = true;
                Addr slice = region.base + static_cast<Addr>(t) *
                                               per_thread *
                                               config.granularity;
                if (config.pattern == AccessPattern::Sequential) {
                    Addr base = slice + idxbuf[0] * config.granularity;
                    Bytes len = got * config.granularity;
                    switch (config.op) {
                      case KernelOp::ReadOnly:
                        sys.submit({t, CpuOp::Load, base, len});
                        demand += len;
                        break;
                      case KernelOp::WriteOnly:
                        sys.submit({t, store_op, base, len});
                        demand += len;
                        break;
                      case KernelOp::ReadModifyWrite:
                        sys.submit({t, CpuOp::Load, base, len});
                        sys.submit({t, store_op, base, len});
                        demand += 2 * len;
                        break;
                    }
                    continue;
                }
                for (std::size_t i = 0; i < got; ++i) {
                    Addr base = slice + idxbuf[i] * config.granularity;
                    switch (config.op) {
                      case KernelOp::ReadOnly:
                        sys.submit({t, CpuOp::Load, base,
                                    config.granularity});
                        demand += config.granularity;
                        break;
                      case KernelOp::WriteOnly:
                        sys.submit({t, store_op, base,
                                    config.granularity});
                        demand += config.granularity;
                        break;
                      case KernelOp::ReadModifyWrite:
                        sys.submit({t, CpuOp::Load, base,
                                    config.granularity});
                        sys.submit({t, store_op, base,
                                    config.granularity});
                        demand += 2 * config.granularity;
                        break;
                    }
                }
            }
        }
    }

    sys.quiesce();

    if (obs::Observer *o = sys.observer()) {
        o->kernelSpan(std::string(kernelOpName(config.op)) + " " +
                          accessPatternName(config.pattern) + " on " +
                          region.name,
                      t0, sys.now());
    }

    KernelResult result;
    result.seconds = sys.now() - t0;
    result.demandBytes = demand;
    result.arrayBytes =
        static_cast<Bytes>(total_granules) * config.granularity *
        config.iterations;
    result.effectiveBandwidth =
        result.seconds > 0
            ? static_cast<double>(demand) / result.seconds
            : 0;
    result.counters = sys.counters().delta(before);
    return result;
}

void
primeClean(MemorySystem &sys, const Region &region, unsigned threads)
{
    KernelConfig cfg;
    cfg.op = KernelOp::ReadOnly;
    cfg.pattern = AccessPattern::Sequential;
    cfg.threads = threads;
    runKernel(sys, region, cfg);
}

void
primeDirty(MemorySystem &sys, const Region &region, unsigned threads)
{
    KernelConfig cfg;
    cfg.op = KernelOp::WriteOnly;
    cfg.pattern = AccessPattern::Sequential;
    cfg.threads = threads;
    cfg.nontemporal = true;
    runKernel(sys, region, cfg);
}

} // namespace nvsim
