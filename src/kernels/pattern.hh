/**
 * @file
 * Access-pattern generators for the microbenchmark kernels,
 * reproducing the paper's custom benchmark generator: memory is
 * accessed "either sequentially or pseudo-randomly", and for the
 * pseudo-random case "each address is touched exactly once (i.e. no
 * repeats) using a maximum length Linear Feedback Shift Register to
 * generate array indices", with access granularity from 64 B to 512 B.
 */

#ifndef NVSIM_KERNELS_PATTERN_HH
#define NVSIM_KERNELS_PATTERN_HH

#include <cstddef>
#include <cstdint>
#include <optional>

#include "core/lfsr.hh"
#include "core/types.hh"

namespace nvsim
{

/** How a thread walks its slice of the array. */
enum class AccessPattern : std::uint8_t { Sequential, Random };

const char *accessPatternName(AccessPattern pattern);

/**
 * Generates granule offsets within one thread's slice of an array.
 * Every granule in [0, count) is produced exactly once per pass.
 */
class OffsetSequence
{
  public:
    /**
     * @param pattern  sequential or LFSR pseudo-random
     * @param count    number of granules in the slice
     * @param seed     LFSR seed (ignored for sequential)
     */
    OffsetSequence(AccessPattern pattern, std::uint64_t count,
                   std::uint64_t seed = 1);

    /** Next granule index, or nullopt when the pass is complete. */
    std::optional<std::uint64_t> next();

    /**
     * Fill @p out with up to @p max indices — the exact stream
     * repeated next() calls would produce — and return how many were
     * written (0 when the pass is complete). Sequential blocks are
     * consecutive runs, which lets callers coalesce them into one
     * ranged access; random blocks amortize the LFSR skip loop.
     */
    std::size_t nextBlock(std::uint64_t *out, std::size_t max);

    /** Restart the pass. */
    void reset();

    std::uint64_t count() const { return count_; }

  private:
    AccessPattern pattern_;
    std::uint64_t count_;
    std::uint64_t emitted_ = 0;
    std::uint64_t cursor_ = 0;  //!< sequential position
    std::uint64_t seed_;
    Lfsr lfsr_;
};

} // namespace nvsim

#endif // NVSIM_KERNELS_PATTERN_HH
