/**
 * @file
 * Seeded, deterministic fault injection and graceful degradation for
 * the simulated memory hierarchy.
 *
 * The paper models a *perfect* machine, yet its central mechanism —
 * tags stored in the DRAM ECC bits — has a failure mode unique to the
 * 2LM design: a DRAM ECC fault corrupts cache *metadata*, not just
 * data. The controller can no longer trust the tag, must invalidate
 * the line and refetch it from NVRAM, adding device accesses that 1LM
 * never pays. Real Optane DIMMs additionally exhibit correctable and
 * uncorrectable media errors and write thermal throttling (Peng et
 * al., "System Evaluation of the Intel Optane Byte-addressable NVM").
 *
 * This module provides:
 *  - FaultConfig:   per-device error rates, retry semantics and
 *                   throttle thresholds, carried in SystemConfig. All
 *                   rates default to zero; a zero-rate plan is
 *                   behavior-neutral (no RNG draws, no timing change).
 *  - FaultPlan:     a per-channel seeded RNG that turns the rates into
 *                   concrete injection decisions. Deterministic for a
 *                   fixed (seed, channel, access stream).
 *  - ThrottleState: per-DIMM hysteretic thermal-throttle automaton
 *                   driven by sustained media write bandwidth.
 *  - FaultLog:      machine-level record of injections, poison
 *                   creation/propagation/consumption (machine checks),
 *                   throttle transitions and channel offlining.
 */

#ifndef NVSIM_FAULT_FAULT_HH
#define NVSIM_FAULT_FAULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/rng.hh"
#include "core/types.hh"

namespace nvsim
{

/**
 * Thermal-throttle configuration of one NVRAM DIMM. Disabled unless
 * engageBandwidth is positive.
 */
struct ThrottleConfig
{
    /** Sustained media-write rate (bytes/s) that triggers throttling. */
    double engageBandwidth = 0;
    /**
     * Rate below which a throttled DIMM recovers. Must be below
     * engageBandwidth for hysteresis; 0 defaults to half the engage
     * threshold.
     */
    double releaseBandwidth = 0;
    /** Consecutive epochs above/below threshold before transitioning. */
    unsigned engageEpochs = 2;
    unsigned releaseEpochs = 2;
    /** Write-bandwidth multiplier while throttled (0 < factor <= 1). */
    double factor = 0.4;

    bool enabled() const { return engageBandwidth > 0; }
    double
    effectiveReleaseBandwidth() const
    {
        return releaseBandwidth > 0 ? releaseBandwidth
                                    : engageBandwidth / 2;
    }
};

/** Fault-injection configuration (all rates are per-transaction). */
struct FaultConfig
{
    /** Master seed; each channel derives its own stream from it. */
    std::uint64_t seed = 1;

    /** NVRAM media error rates per 64 B demand transaction. */
    double nvramReadCorrectable = 0;
    double nvramReadUncorrectable = 0;
    double nvramWriteCorrectable = 0;
    double nvramWriteUncorrectable = 0;

    /** DRAM data ECC correctable rate per tag-check / data read. */
    double dramCorrectable = 0;
    /**
     * Uncorrectable ECC fault in the DRAM bits that hold the 2LM tag:
     * the controller must invalidate the line and refetch from NVRAM.
     * In 1LM (no tags in ECC) the same event is a plain uncorrectable
     * data error: the line is poisoned.
     */
    double tagEccUncorrectable = 0;

    /** Transient-error retry model. */
    unsigned maxRetries = 3;
    double retryLatency = 2e-6;  //!< seconds per retry round trip

    ThrottleConfig throttle;

    /** True iff any injection or degradation mechanism is active. */
    bool
    enabled() const
    {
        return nvramReadCorrectable > 0 || nvramReadUncorrectable > 0 ||
               nvramWriteCorrectable > 0 ||
               nvramWriteUncorrectable > 0 || dramCorrectable > 0 ||
               tagEccUncorrectable > 0 || throttle.enabled();
    }

    /** Reject rates outside [0,1] and nonsensical retry/throttle knobs. */
    void validate() const;
};

/** Outcome of one fault draw against a device transaction. */
struct MediaFault
{
    std::uint8_t retries = 0;   //!< retry rounds spent (latency cost)
    bool correctable = false;   //!< transient error, data recovered
    bool uncorrectable = false; //!< data lost; the line is poisoned

    bool any() const { return correctable || uncorrectable; }
};

/**
 * Hysteretic per-DIMM thermal-throttle automaton. Fed the media write
 * rate of each epoch; engages after engageEpochs consecutive epochs
 * above the engage threshold, releases after releaseEpochs consecutive
 * epochs below the release threshold.
 */
class ThrottleState
{
  public:
    ThrottleState() = default;
    explicit ThrottleState(const ThrottleConfig &config)
        : config_(config)
    {
    }

    /** Transition produced by one epoch observation. */
    enum class Transition : std::uint8_t { None, Engaged, Released };

    /**
     * Observe one epoch's sustained media write rate (bytes/s).
     * Returns the transition, if any, that the observation caused.
     */
    Transition observe(double media_write_rate);

    bool engaged() const { return engaged_; }

    /** Current write-bandwidth multiplier (1.0 when not throttled). */
    double
    factor() const
    {
        return engaged_ ? config_.factor : 1.0;
    }

    const ThrottleConfig &config() const { return config_; }

    void
    reset()
    {
        engaged_ = false;
        hotEpochs_ = 0;
        coolEpochs_ = 0;
    }

  private:
    ThrottleConfig config_;
    bool engaged_ = false;
    unsigned hotEpochs_ = 0;   //!< consecutive epochs above engage
    unsigned coolEpochs_ = 0;  //!< consecutive epochs below release
};

/**
 * Per-channel injection decision stream. A disabled plan (default
 * construction, or a FaultConfig with all rates zero) never touches
 * its RNG and costs one branch per hook.
 */
class FaultPlan
{
  public:
    /** Disabled plan: every draw returns "no fault". */
    FaultPlan() = default;

    FaultPlan(const FaultConfig &config, unsigned channel_index);

    bool enabled() const { return enabled_; }
    const FaultConfig &config() const { return config_; }

    /** Draw the fault outcome for one NVRAM demand read / write. */
    MediaFault nvramRead() { return mediaDraw(config_.nvramReadCorrectable, config_.nvramReadUncorrectable); }
    MediaFault nvramWrite() { return mediaDraw(config_.nvramWriteCorrectable, config_.nvramWriteUncorrectable); }

    /**
     * Draw for one DRAM read that carries data (and, in 2LM, the
     * in-ECC tag). A correctable outcome costs retries; an
     * uncorrectable outcome corrupts the tag bits (2LM) or poisons the
     * data (1LM).
     */
    MediaFault dramRead();

    /** Number of retry rounds for a correctable (transient) error. */
    unsigned retryRounds();

  private:
    MediaFault mediaDraw(double correctable, double uncorrectable);

    FaultConfig config_;
    Rng rng_;
    bool enabled_ = false;
};

/** Categories of recorded fault events. */
enum class FaultEventKind : std::uint8_t {
    CorrectableMedia,    //!< NVRAM media error, recovered by retry
    UncorrectableMedia,  //!< NVRAM media error, line poisoned
    TagEccInvalidate,    //!< DRAM ECC fault corrupted a 2LM tag
    DramUncorrectable,   //!< DRAM ECC fault poisoned 1LM data
    PoisonConsumed,      //!< demand load hit poison: machine check
    ThrottleEngaged,
    ThrottleReleased,
    ChannelOfflined,
    LineRetired,         //!< patrol scrub mapped a DRAM frame out
    TargetedRefresh,     //!< RowHammer mitigation fired on a hot row
};

/** Number of FaultEventKind values (sizes FaultLog's count table). */
inline constexpr std::size_t kNumFaultEventKinds = 10;

const char *faultEventKindName(FaultEventKind kind);

/**
 * Machine-level fault record. Aggregate counts are always exact; the
 * per-event list is capped (kMaxEvents) so pathological fuzz runs
 * cannot exhaust memory.
 */
class FaultLog
{
  public:
    struct Event
    {
        double time = 0;
        unsigned channel = 0;
        FaultEventKind kind = FaultEventKind::CorrectableMedia;
        Addr addr = 0;
    };

    static constexpr std::size_t kMaxEvents = 1u << 16;

    void record(double time, unsigned channel, FaultEventKind kind,
                Addr addr = 0);

    /** Poison bookkeeping (called by the MemorySystem). */
    void notePoisonCreated() { ++poisonCreated_; }
    void notePoisonPropagated() { ++poisonPropagated_; }
    void notePoisonCleared() { ++poisonCleared_; }

    const std::vector<Event> &events() const { return events_; }
    std::uint64_t count(FaultEventKind kind) const;

    std::uint64_t correctable() const { return count(FaultEventKind::CorrectableMedia); }
    std::uint64_t uncorrectable() const { return count(FaultEventKind::UncorrectableMedia); }
    std::uint64_t tagEccInvalidates() const { return count(FaultEventKind::TagEccInvalidate); }
    std::uint64_t machineChecks() const { return count(FaultEventKind::PoisonConsumed); }
    std::uint64_t poisonCreated() const { return poisonCreated_; }
    std::uint64_t poisonPropagated() const { return poisonPropagated_; }
    std::uint64_t poisonCleared() const { return poisonCleared_; }

    bool empty() const;

    /** Human-readable one-line-per-count summary. */
    std::string summary() const;

  private:
    std::vector<Event> events_;
    std::uint64_t counts_[kNumFaultEventKinds] = {};
    std::uint64_t poisonCreated_ = 0;
    std::uint64_t poisonPropagated_ = 0;
    std::uint64_t poisonCleared_ = 0;
};

} // namespace nvsim

#endif // NVSIM_FAULT_FAULT_HH
