#include "fault/fault.hh"

#include "core/logging.hh"

namespace nvsim
{

void
FaultConfig::validate() const
{
    auto rate = [](double r, const char *name) {
        if (r < 0 || r > 1)
            fatal("fault rate %s = %g outside [0, 1]", name, r);
    };
    rate(nvramReadCorrectable, "nvramReadCorrectable");
    rate(nvramReadUncorrectable, "nvramReadUncorrectable");
    rate(nvramWriteCorrectable, "nvramWriteCorrectable");
    rate(nvramWriteUncorrectable, "nvramWriteUncorrectable");
    rate(dramCorrectable, "dramCorrectable");
    rate(tagEccUncorrectable, "tagEccUncorrectable");
    if (maxRetries == 0)
        fatal("fault maxRetries must be at least 1");
    if (retryLatency < 0)
        fatal("fault retryLatency must be nonnegative");
    if (throttle.enabled()) {
        if (throttle.factor <= 0 || throttle.factor > 1)
            fatal("throttle factor %g outside (0, 1]", throttle.factor);
        if (throttle.effectiveReleaseBandwidth() >
            throttle.engageBandwidth)
            fatal("throttle release threshold above engage threshold "
                  "(no hysteresis)");
        if (throttle.engageEpochs == 0 || throttle.releaseEpochs == 0)
            fatal("throttle engage/release epoch counts must be "
                  "positive");
    }
}

ThrottleState::Transition
ThrottleState::observe(double media_write_rate)
{
    if (!config_.enabled())
        return Transition::None;

    if (!engaged_) {
        if (media_write_rate > config_.engageBandwidth) {
            if (++hotEpochs_ >= config_.engageEpochs) {
                engaged_ = true;
                hotEpochs_ = 0;
                coolEpochs_ = 0;
                return Transition::Engaged;
            }
        } else {
            hotEpochs_ = 0;
        }
    } else {
        if (media_write_rate < config_.effectiveReleaseBandwidth()) {
            if (++coolEpochs_ >= config_.releaseEpochs) {
                engaged_ = false;
                hotEpochs_ = 0;
                coolEpochs_ = 0;
                return Transition::Released;
            }
        } else {
            coolEpochs_ = 0;
        }
    }
    return Transition::None;
}

FaultPlan::FaultPlan(const FaultConfig &config, unsigned channel_index)
    : config_(config), enabled_(config.enabled())
{
    config_.validate();
    // Derive an independent stream per channel from the master seed.
    std::uint64_t x = config.seed;
    splitmix64(x);
    x ^= 0x632BE59BD9B4E019ull * (channel_index + 1);
    rng_ = Rng(splitmix64(x));
}

MediaFault
FaultPlan::mediaDraw(double correctable, double uncorrectable)
{
    MediaFault f;
    if (!enabled_ || (correctable <= 0 && uncorrectable <= 0))
        return f;
    double u = rng_.uniform();
    if (u < uncorrectable) {
        // Escalation: the controller exhausts its retries and reports
        // an uncorrectable error; the line is poisoned.
        f.uncorrectable = true;
        f.retries = static_cast<std::uint8_t>(config_.maxRetries);
    } else if (u < uncorrectable + correctable) {
        f.correctable = true;
        f.retries = static_cast<std::uint8_t>(retryRounds());
    }
    return f;
}

MediaFault
FaultPlan::dramRead()
{
    return mediaDraw(config_.dramCorrectable,
                     config_.tagEccUncorrectable);
}

unsigned
FaultPlan::retryRounds()
{
    if (config_.maxRetries <= 1)
        return 1;
    return 1 + static_cast<unsigned>(rng_.below(config_.maxRetries));
}

const char *
faultEventKindName(FaultEventKind kind)
{
    switch (kind) {
      case FaultEventKind::CorrectableMedia:
        return "correctable_media";
      case FaultEventKind::UncorrectableMedia:
        return "uncorrectable_media";
      case FaultEventKind::TagEccInvalidate:
        return "tag_ecc_invalidate";
      case FaultEventKind::DramUncorrectable:
        return "dram_uncorrectable";
      case FaultEventKind::PoisonConsumed:
        return "poison_consumed_mce";
      case FaultEventKind::ThrottleEngaged:
        return "throttle_engaged";
      case FaultEventKind::ThrottleReleased:
        return "throttle_released";
      case FaultEventKind::ChannelOfflined:
        return "channel_offlined";
      case FaultEventKind::LineRetired:
        return "line_retired";
      case FaultEventKind::TargetedRefresh:
        return "targeted_refresh";
    }
    return "unknown";
}

void
FaultLog::record(double time, unsigned channel, FaultEventKind kind,
                 Addr addr)
{
    ++counts_[static_cast<std::size_t>(kind)];
    if (events_.size() < kMaxEvents)
        events_.push_back(Event{time, channel, kind, addr});
}

std::uint64_t
FaultLog::count(FaultEventKind kind) const
{
    return counts_[static_cast<std::size_t>(kind)];
}

bool
FaultLog::empty() const
{
    for (std::uint64_t c : counts_) {
        if (c)
            return false;
    }
    return poisonCreated_ == 0 && poisonPropagated_ == 0 &&
           poisonCleared_ == 0;
}

std::string
FaultLog::summary() const
{
    std::string s;
    for (std::size_t k = 0; k < kNumFaultEventKinds; ++k) {
        if (!counts_[k])
            continue;
        s += strprintf("%s: %llu\n",
                       faultEventKindName(static_cast<FaultEventKind>(k)),
                       static_cast<unsigned long long>(counts_[k]));
    }
    s += strprintf("poison created/propagated/cleared: %llu/%llu/%llu\n",
                   static_cast<unsigned long long>(poisonCreated_),
                   static_cast<unsigned long long>(poisonPropagated_),
                   static_cast<unsigned long long>(poisonCleared_));
    return s;
}

} // namespace nvsim
