#include "mem/nvram.hh"

#include <algorithm>

#include "core/logging.hh"

namespace nvsim
{

NvramDevice::NvramDevice(const NvramParams &params)
    : params_(params), readBuffer_(params.readBufferEntries),
      wpq_(params.wpqEntries)
{
    if (params_.readBufferEntries == 0 || params_.wpqEntries == 0)
        fatal("NVRAM buffers need at least one entry");
    readBuffer_.order.reserve(params_.readBufferEntries + 1);
    wpq_.order.reserve(params_.wpqEntries + 1);
}

bool
NvramDevice::BlockLru::touch(Addr block, Addr &evicted, bool &did_evict)
{
    did_evict = false;
    // Sequential streams touch the same block several times in a row:
    // it is already most recently used, so skip the linear scan.
    if (!order.empty() && order.back() == block)
        return true;
    auto it = std::find(order.begin(), order.end(), block);
    if (it != order.end()) {
        // Move to most-recently-used position.
        order.erase(it);
        order.push_back(block);
        return true;
    }
    order.push_back(block);
    if (order.size() > capacity) {
        evicted = order.front();
        order.erase(order.begin());
        did_evict = true;
    }
    return false;
}

void
NvramDevice::noteWriter(std::uint16_t thread)
{
    if (thread >= writerStamp_.size())
        writerStamp_.resize(thread + 1, 0);
    if (writerStamp_[thread] != writerEpochId_) {
        writerStamp_[thread] = writerEpochId_;
        ++epoch_.writerStreams;
    }
}

void
NvramDevice::mediaWrite(Addr block)
{
    (void)block;
    ++epoch_.mediaWriteBlocks;
}

MediaFault
NvramDevice::read(Addr addr, std::uint16_t thread)
{
    (void)thread;
    ++epoch_.demandReads;
    Addr block = mediaBlockBase(addr);
    Addr evicted;
    bool did_evict;
    if (!readBuffer_.touch(block, evicted, did_evict)) {
        // Buffer miss: the controller reads the whole 256 B media block.
        ++epoch_.mediaReadBlocks;
    }
    return faultPlan_ ? faultPlan_->nvramRead() : MediaFault{};
}

MediaFault
NvramDevice::write(Addr addr, std::uint16_t thread)
{
    noteWriter(thread);
    ++epoch_.demandWrites;
    Addr block = mediaBlockBase(addr);
    unsigned slot =
        static_cast<unsigned>((addr - block) / kLineSize) & 0x3;

    Addr evicted;
    bool did_evict;
    bool hit = wpq_.touch(block, evicted, did_evict);
    if (did_evict) {
        // A partially (or fully) merged block is forced to media early.
        wpqFill_.erase(evicted);
        mediaWrite(evicted);
    }
    std::uint8_t &fill = wpqFill_[block];
    if (!hit)
        fill = 0;
    fill = static_cast<std::uint8_t>(fill | (1u << slot));
    if (fill == 0xF) {
        // Fully merged 256 B block: retire it with one media write.
        wpqFill_.erase(block);
        retireWpqBlock(block);
        mediaWrite(block);
    }
    return faultPlan_ ? faultPlan_->nvramWrite() : MediaFault{};
}

void
NvramDevice::retireWpqBlock(Addr block)
{
    // The block was touched on this demand write, so it sits at the
    // MRU end; fall back to a scan only if something else moved it.
    if (!wpq_.order.empty() && wpq_.order.back() == block) {
        wpq_.order.pop_back();
        return;
    }
    auto it = std::find(wpq_.order.begin(), wpq_.order.end(), block);
    if (it != wpq_.order.end())
        wpq_.order.erase(it);
}

void
NvramDevice::readRun(Addr addr, std::uint64_t lines)
{
    // Per-line, consecutive reads of one media block are one buffer
    // miss followed by hits at the MRU position; walking the distinct
    // blocks reproduces that state exactly with one touch per block.
    epoch_.demandReads += lines;
    Addr block = mediaBlockBase(addr);
    Addr last = mediaBlockBase(addr + (lines - 1) * kLineSize);
    Addr evicted;
    bool did_evict;
    for (; block <= last; block += kMediaBlockSize) {
        if (!readBuffer_.touch(block, evicted, did_evict))
            ++epoch_.mediaReadBlocks;
    }
}

void
NvramDevice::writeRun(Addr addr, std::uint64_t lines,
                      std::uint16_t thread)
{
    noteWriter(thread);
    epoch_.demandWrites += lines;

    Addr a = addr;
    std::uint64_t left = lines;
    Addr evicted;
    bool did_evict;
    while (left) {
        Addr block = mediaBlockBase(a);
        unsigned slot =
            static_cast<unsigned>((a - block) / kLineSize) & 0x3;
        unsigned count = static_cast<unsigned>(
            std::min<std::uint64_t>(left, 4 - slot));

        bool hit = wpq_.touch(block, evicted, did_evict);
        if (did_evict) {
            wpqFill_.erase(evicted);
            mediaWrite(evicted);
        }
        std::uint8_t *fill = &wpqFill_[block];
        if (!hit)
            *fill = 0;
        // Merge the segment's slots one at a time: a rewrite can
        // complete the block mid-segment (stale partial fill from an
        // earlier pass), in which case the per-line path retires it
        // and re-opens the block for the remaining slots.
        for (unsigned i = 0; i < count; ++i, ++slot) {
            *fill = static_cast<std::uint8_t>(*fill | (1u << slot));
            if (*fill != 0xF)
                continue;
            wpqFill_.erase(block);
            retireWpqBlock(block);
            mediaWrite(block);
            if (i + 1 < count) {
                wpq_.touch(block, evicted, did_evict);
                if (did_evict) {
                    wpqFill_.erase(evicted);
                    mediaWrite(evicted);
                }
                fill = &wpqFill_[block];
                *fill = 0;
            }
        }
        a += static_cast<Addr>(count) * kLineSize;
        left -= count;
    }
}

void
NvramDevice::flushWpq()
{
    wpq_.drain([this](Addr block) {
        wpqFill_.erase(block);
        mediaWrite(block);
    });
    wpqFill_.clear();
}

NvramEpoch
NvramDevice::drainEpoch()
{
    NvramEpoch e = epoch_;
    total_.demandReads += e.demandReads;
    total_.demandWrites += e.demandWrites;
    total_.mediaReadBlocks += e.mediaReadBlocks;
    total_.mediaWriteBlocks += e.mediaWriteBlocks;
    total_.writerStreams = std::max(total_.writerStreams, e.writerStreams);
    epoch_ = NvramEpoch{};
    ++writerEpochId_;  // invalidates every writer stamp in O(1)
    return e;
}

double
NvramDevice::writeEfficiency(std::uint64_t streams) const
{
    double over = static_cast<double>(
        streams > params_.writeContentionKnee
            ? streams - params_.writeContentionKnee
            : 0);
    return 1.0 / (1.0 + params_.writeContentionAlpha * over);
}

double
NvramDevice::writeAmplification() const
{
    Bytes demand = total_.demandWrites * kLineSize;
    if (demand == 0)
        return 0;
    return static_cast<double>(total_.mediaWriteBytes()) /
           static_cast<double>(demand);
}

double
NvramDevice::readAmplification() const
{
    Bytes demand = total_.demandReads * kLineSize;
    if (demand == 0)
        return 0;
    return static_cast<double>(total_.mediaReadBytes()) /
           static_cast<double>(demand);
}

} // namespace nvsim
