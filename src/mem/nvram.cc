#include "mem/nvram.hh"

#include <algorithm>

#include "core/logging.hh"

namespace nvsim
{

NvramDevice::NvramDevice(const NvramParams &params)
    : params_(params), readBuffer_(params.readBufferEntries),
      wpq_(params.wpqEntries)
{
    if (params_.readBufferEntries == 0 || params_.wpqEntries == 0)
        fatal("NVRAM buffers need at least one entry");
    readBuffer_.order.reserve(params_.readBufferEntries + 1);
    wpq_.order.reserve(params_.wpqEntries + 1);
}

bool
NvramDevice::BlockLru::touch(Addr block, Addr &evicted, bool &did_evict)
{
    did_evict = false;
    auto it = std::find(order.begin(), order.end(), block);
    if (it != order.end()) {
        // Move to most-recently-used position.
        order.erase(it);
        order.push_back(block);
        return true;
    }
    order.push_back(block);
    if (order.size() > capacity) {
        evicted = order.front();
        order.erase(order.begin());
        did_evict = true;
    }
    return false;
}

void
NvramDevice::noteWriter(std::uint16_t thread)
{
    if (std::find(writers_.begin(), writers_.end(), thread) ==
        writers_.end()) {
        writers_.push_back(thread);
        epoch_.writerStreams = writers_.size();
    }
}

void
NvramDevice::mediaWrite(Addr block)
{
    (void)block;
    ++epoch_.mediaWriteBlocks;
}

MediaFault
NvramDevice::read(Addr addr, std::uint16_t thread)
{
    (void)thread;
    ++epoch_.demandReads;
    Addr block = mediaBlockBase(addr);
    Addr evicted;
    bool did_evict;
    if (!readBuffer_.touch(block, evicted, did_evict)) {
        // Buffer miss: the controller reads the whole 256 B media block.
        ++epoch_.mediaReadBlocks;
    }
    return faultPlan_ ? faultPlan_->nvramRead() : MediaFault{};
}

MediaFault
NvramDevice::write(Addr addr, std::uint16_t thread)
{
    noteWriter(thread);
    ++epoch_.demandWrites;
    Addr block = mediaBlockBase(addr);
    unsigned slot =
        static_cast<unsigned>((addr - block) / kLineSize) & 0x3;

    Addr evicted;
    bool did_evict;
    bool hit = wpq_.touch(block, evicted, did_evict);
    if (did_evict) {
        // A partially (or fully) merged block is forced to media early.
        wpqFill_.erase(evicted);
        mediaWrite(evicted);
    }
    std::uint8_t &fill = wpqFill_[block];
    if (!hit)
        fill = 0;
    fill = static_cast<std::uint8_t>(fill | (1u << slot));
    if (fill == 0xF) {
        // Fully merged 256 B block: retire it with one media write.
        wpqFill_.erase(block);
        auto it = std::find(wpq_.order.begin(), wpq_.order.end(), block);
        if (it != wpq_.order.end())
            wpq_.order.erase(it);
        mediaWrite(block);
    }
    return faultPlan_ ? faultPlan_->nvramWrite() : MediaFault{};
}

void
NvramDevice::flushWpq()
{
    wpq_.drain([this](Addr block) {
        wpqFill_.erase(block);
        mediaWrite(block);
    });
    wpqFill_.clear();
}

NvramEpoch
NvramDevice::drainEpoch()
{
    NvramEpoch e = epoch_;
    total_.demandReads += e.demandReads;
    total_.demandWrites += e.demandWrites;
    total_.mediaReadBlocks += e.mediaReadBlocks;
    total_.mediaWriteBlocks += e.mediaWriteBlocks;
    total_.writerStreams = std::max(total_.writerStreams, e.writerStreams);
    epoch_ = NvramEpoch{};
    writers_.clear();
    return e;
}

double
NvramDevice::writeEfficiency(std::uint64_t streams) const
{
    double over = static_cast<double>(
        streams > params_.writeContentionKnee
            ? streams - params_.writeContentionKnee
            : 0);
    return 1.0 / (1.0 + params_.writeContentionAlpha * over);
}

double
NvramDevice::writeAmplification() const
{
    Bytes demand = total_.demandWrites * kLineSize;
    if (demand == 0)
        return 0;
    return static_cast<double>(total_.mediaWriteBytes()) /
           static_cast<double>(demand);
}

double
NvramDevice::readAmplification() const
{
    Bytes demand = total_.demandReads * kLineSize;
    if (demand == 0)
        return 0;
    return static_cast<double>(total_.mediaReadBytes()) /
           static_cast<double>(demand);
}

} // namespace nvsim
