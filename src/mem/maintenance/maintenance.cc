#include "mem/maintenance/maintenance.hh"

#include <cmath>

#include "core/logging.hh"

namespace nvsim
{

void
MaintenanceConfig::validate() const
{
    if (refresh.trefi < 0)
        fatal("maintenance refresh tREFI = %g is a negative cadence",
              refresh.trefi);
    if (refresh.trfc < 0)
        fatal("maintenance refresh tRFC = %g is a negative cadence",
              refresh.trfc);
    if (refresh.enabled()) {
        if (refresh.trfc <= 0)
            fatal("maintenance refresh tRFC must be positive when "
                  "refresh is enabled");
        if (refresh.trfc >= refresh.trefi)
            fatal("maintenance refresh tRFC %g >= tREFI %g: the DIMM "
                  "would spend all bank time refreshing",
                  refresh.trfc, refresh.trefi);
    }
    if (scrub.interval < 0)
        fatal("maintenance scrub interval = %g is a negative cadence",
              scrub.interval);
    auto rate = [](double r, const char *name) {
        if (r < 0 || r > 1)
            fatal("maintenance scrub rate %s = %g outside [0, 1]", name,
                  r);
    };
    rate(scrub.correctable, "correctable");
    rate(scrub.uncorrectable, "uncorrectable");
    if (scrub.correctable + scrub.uncorrectable > 1)
        fatal("maintenance scrub correctable + uncorrectable = %g "
              "exceeds 1",
              scrub.correctable + scrub.uncorrectable);
    if (scrub.enabled() && scrub.retireThreshold == 0)
        fatal("maintenance scrub retire threshold must be at least 1 "
              "(threshold 0 would retire frames before any error)");
    if (rowhammer.threshold > 0) {
        if (rowhammer.trackerEntries == 0)
            fatal("maintenance rowhammer trackerEntries must be "
                  "positive");
        if (rowhammer.rowBytes < kLineSize)
            fatal("maintenance rowhammer rowBytes %llu below one %llu B "
                  "line",
                  static_cast<unsigned long long>(rowhammer.rowBytes),
                  static_cast<unsigned long long>(kLineSize));
        if (rowhammer.blastRadius == 0)
            fatal("maintenance rowhammer blastRadius must be positive");
        if (rowhammer.refreshLatency < 0)
            fatal("maintenance rowhammer refreshLatency must be "
                  "nonnegative");
        if (rowhammer.window <= 0)
            fatal("maintenance rowhammer window = %g is not a positive "
                  "cadence",
                  rowhammer.window);
    }
}

unsigned
RowTracker::activate(std::uint64_t row, std::uint64_t n)
{
    if (n == 0 || config_.threshold == 0)
        return 0;

    auto it = counts_.find(row);
    if (it == counts_.end()) {
        if (counts_.size() <
            static_cast<std::size_t>(config_.trackerEntries)) {
            // A new row enters at the spillover floor: its true count
            // cannot exceed spillover + n, and assuming the maximum
            // keeps the tracker free of false negatives.
            it = counts_.emplace(row, spillover_).first;
        } else {
            // Table full: the activations land in the spillover. When
            // the spillover overtakes the smallest tracked count, that
            // row can no longer be distinguished from the untracked
            // mass — swap it out (ties broken by smallest row id so
            // the result never depends on hash iteration order).
            spillover_ += n;
            auto min_it = counts_.begin();
            for (auto i = counts_.begin(); i != counts_.end(); ++i) {
                if (i->second < min_it->second ||
                    (i->second == min_it->second &&
                     i->first < min_it->first)) {
                    min_it = i;
                }
            }
            if (spillover_ < min_it->second)
                return 0;
            counts_.erase(min_it);
            it = counts_.emplace(row, spillover_).first;
            // The count was already credited to the spillover; fall
            // through to the threshold check on the adopted value.
            n = 0;
        }
    }

    it->second += n;
    if (it->second < config_.threshold)
        return 0;
    unsigned triggers =
        static_cast<unsigned>(it->second / config_.threshold);
    // Mitigation refreshes the neighbors and resets the row's counter;
    // keep the remainder, as a hardware counter reset does.
    it->second %= config_.threshold;
    return triggers;
}

void
RowTracker::resetWindow()
{
    counts_.clear();
    spillover_ = 0;
}

ScrubEngine::ScrubEngine(const ScrubConfig &config, Bytes capacity,
                         std::uint64_t seed, unsigned channel)
    : config_(config), capacity_(capacity)
{
    // Derive an independent stream per channel from the master seed
    // (same construction as FaultPlan, different master, so the scrub
    // stream never perturbs fault-injection replay).
    std::uint64_t x = seed;
    splitmix64(x);
    x ^= 0x9E6C63D0876A3F6Bull * (channel + 1);
    rng_ = Rng(splitmix64(x));
}

ScrubOutcome
ScrubEngine::tick()
{
    ScrubOutcome o;
    if (!config_.enabled() || capacity_ < kLineSize)
        return o;
    pending_ += 1.0;
    if (pending_ < config_.interval)
        return o;
    pending_ -= config_.interval;
    // At most one patrol read per demand request: a sub-1 interval
    // saturates instead of queueing an unbounded backlog.
    if (pending_ > config_.interval)
        pending_ = config_.interval;

    o.read = true;
    o.frame = walk_;
    walk_ += kLineSize;
    if (walk_ + kLineSize > capacity_)
        walk_ = 0;

    double u = rng_.uniform();
    if (u < config_.uncorrectable) {
        // Escalate: the frame's data is lost, and the frame itself is
        // suspect — map it out while the spare budget lasts.
        o.uncorrectableError = true;
        if (retired_ < config_.retireCapacity) {
            o.retire = true;
            ++retired_;
            ceCount_.erase(o.frame);
        }
    } else if (u < config_.uncorrectable + config_.correctable) {
        o.correctableError = true;
        unsigned &ce = ceCount_[o.frame];
        if (++ce >= config_.retireThreshold &&
            retired_ < config_.retireCapacity) {
            // Repeat-CE ladder: the frame is failing; retire it before
            // the errors become uncorrectable.
            o.retire = true;
            ++retired_;
            ceCount_.erase(o.frame);
        }
    }
    return o;
}

MaintenanceEngine::MaintenanceEngine(const MaintenanceConfig &config,
                                     Bytes dramCapacity, unsigned channel)
    : config_(config), capacity_(dramCapacity), channel_(channel),
      enabled_(config.enabled()),
      scrub_(config.scrub, dramCapacity, config.seed, channel),
      tracker_(config.rowhammer)
{
}

unsigned
MaintenanceEngine::noteActivation(Addr local, std::uint64_t n)
{
    if (!config_.rowhammer.enabled() || n == 0 || capacity_ == 0)
        return 0;
    // The cache (and the 1LM DRAM pool) fold the address space onto
    // the DIMM's frames, so the activated row is the frame's row.
    std::uint64_t row = (local % capacity_) / config_.rowhammer.rowBytes;
    unsigned triggers = tracker_.activate(row, n);
    if (triggers) {
        targetedTime_ += static_cast<double>(triggers) *
                         static_cast<double>(config_.rowhammer.blastRadius) *
                         config_.rowhammer.refreshLatency;
    }
    return triggers;
}

double
MaintenanceEngine::drainTargetedTime()
{
    double t = targetedTime_;
    targetedTime_ = 0;
    return t;
}

double
MaintenanceEngine::drainScrubTime()
{
    double t = scrubTime_;
    scrubTime_ = 0;
    return t;
}

std::uint64_t
MaintenanceEngine::closeEpoch(double dt)
{
    if (!enabled_ || dt <= 0)
        return 0;
    std::uint64_t slots = 0;
    if (config_.refresh.enabled()) {
        refreshCarry_ += dt / config_.refresh.trefi;
        slots = static_cast<std::uint64_t>(refreshCarry_);
        refreshCarry_ -= static_cast<double>(slots);
    }
    if (config_.rowhammer.enabled()) {
        windowClock_ += dt;
        if (windowClock_ >= config_.rowhammer.window) {
            windowClock_ =
                std::fmod(windowClock_, config_.rowhammer.window);
            tracker_.resetWindow();
        }
    }
    return slots;
}

void
MaintenanceEngine::reset()
{
    scrub_ = ScrubEngine(config_.scrub, capacity_, config_.seed,
                         channel_);
    tracker_ = RowTracker(config_.rowhammer);
    targetedTime_ = 0;
    scrubTime_ = 0;
    refreshCarry_ = 0;
    windowClock_ = 0;
}

} // namespace nvsim
