/**
 * @file
 * DRAM self-management under the cache: refresh, patrol scrub and
 * RowHammer mitigation as first-class bandwidth thieves.
 *
 * The paper's Table I amplification numbers assume a DRAM device that
 * is always available, but real DRAM continuously loses bank time to
 * maintenance:
 *
 *  - Refresh: every tREFI the controller issues a REF command that
 *    blocks the banks for tRFC, stealing a duty-cycle fraction
 *    tRFC/tREFI of all demand slots.
 *  - Patrol scrub: the controller walks the DRAM frames on a cadence,
 *    reading each line through ECC. Correctable errors are logged and
 *    scrubbed in place; a frame that keeps producing correctable
 *    errors is retired (mapped out to a spare); an uncorrectable error
 *    escalates into the fault layer's poison / invalidate+refetch
 *    path — and in 2LM it also destroys the in-ECC tag.
 *  - RowHammer mitigation: a Graphene-style top-k activation tracker
 *    (Misra-Gries frequent elements with a spillover counter) fires a
 *    targeted refresh of a hot row's neighbors when its activation
 *    count crosses the threshold within one refresh window. In 2LM
 *    every tag probe is itself a row activation, so hardware cache
 *    management generates its own RowHammer pressure; 1LM NVRAM
 *    traffic never touches DRAM rows at all.
 *
 * All of it is deterministic and seeded: the scrub engine derives an
 * independent RNG stream per channel from (seed, channel) exactly the
 * way FaultPlan does, so maintenance-on runs replay bit-identically at
 * any parallelism and maintenance-off runs never touch an RNG.
 * Everything defaults to off, which is behavior-neutral by
 * construction (no draws, no latency, no counters).
 */

#ifndef NVSIM_MEM_MAINTENANCE_MAINTENANCE_HH
#define NVSIM_MEM_MAINTENANCE_MAINTENANCE_HH

#include <cstdint>
#include <unordered_map>

#include "core/rng.hh"
#include "core/types.hh"

namespace nvsim
{

/** tREFI/tRFC refresh accounting of one DRAM DIMM. Off while trefi=0. */
struct RefreshConfig
{
    /** Seconds between REF commands (JEDEC nominal 7.8e-6); 0 = off. */
    double trefi = 0;
    /** Seconds each REF command blocks the DIMM's banks. */
    double trfc = 350e-9;

    bool enabled() const { return trefi > 0; }

    /** Fraction of bank time lost to refresh. */
    double duty() const { return enabled() ? trfc / trefi : 0.0; }
};

/** Patrol-scrub cadence and ECC error model. Off while interval=0. */
struct ScrubConfig
{
    /**
     * DRAM-touching demand requests between patrol reads on a channel
     * (the scrubber steals one DRAM demand slot each time); 0 = off.
     * Requests that never contend for the DRAM device — an app-direct
     * NVRAM stream — do not advance the cadence. Fractional values are
     * honored via accumulation, floored at one read per request.
     */
    double interval = 0;
    /** Correctable-error probability per patrol read. */
    double correctable = 0;
    /** Uncorrectable-error probability per patrol read. */
    double uncorrectable = 0;
    /** Correctable errors on one frame before it is retired. */
    unsigned retireThreshold = 2;
    /** Spare-row budget: frames the channel can map out. */
    std::uint64_t retireCapacity = 64;

    bool enabled() const { return interval > 0; }
};

/** Graphene-style RowHammer tracker + targeted-refresh mitigation. */
struct RowHammerConfig
{
    /** Activations per row per window that trigger mitigation; 0 = off. */
    std::uint64_t threshold = 0;
    /** Counter-table entries (the top-k of the Misra-Gries sketch). */
    std::uint32_t trackerEntries = 64;
    /** Bytes per DRAM row (one activation covers this span). */
    Bytes rowBytes = 8 * kKiB;
    /** Neighbor rows refreshed per mitigation (both directions). */
    unsigned blastRadius = 2;
    /** Bank-blocking seconds per neighbor-row targeted refresh. */
    double refreshLatency = 60e-9;
    /** Tracker reset period (tREFW: all rows refreshed naturally). */
    double window = 64e-3;

    bool enabled() const { return threshold > 0; }
};

/** The maintenance block of SystemConfig. All-off by default. */
struct MaintenanceConfig
{
    /** Master seed; each channel derives its own scrub stream. */
    std::uint64_t seed = 1;
    RefreshConfig refresh;
    ScrubConfig scrub;
    RowHammerConfig rowhammer;

    bool
    enabled() const
    {
        return refresh.enabled() || scrub.enabled() ||
               rowhammer.enabled();
    }

    /** Reject negative cadences, zero thresholds and the like. */
    void validate() const;
};

/**
 * Misra-Gries top-k row-activation tracker with a spillover counter
 * (the Graphene construction): rows evicted from the table donate
 * their count to the spillover, and a new row enters at the spillover
 * value, so no row's true activation count is ever underestimated —
 * the no-false-negative property a RowHammer defense needs.
 */
class RowTracker
{
  public:
    RowTracker() = default;
    explicit RowTracker(const RowHammerConfig &config) : config_(config)
    {
    }

    /**
     * Record @p n activations of @p row. Returns the number of
     * threshold crossings (targeted-refresh mitigations to fire); the
     * row's counter keeps the remainder, as the hardware's counter
     * reset on mitigation does.
     */
    unsigned activate(std::uint64_t row, std::uint64_t n);

    /** tREFW rollover: every row was refreshed naturally; start over. */
    void resetWindow();

    std::uint64_t spillover() const { return spillover_; }
    std::size_t tracked() const { return counts_.size(); }

  private:
    RowHammerConfig config_;
    std::unordered_map<std::uint64_t, std::uint64_t> counts_;
    std::uint64_t spillover_ = 0;
};

/** What one maintenance tick did (at most one patrol read per tick). */
struct ScrubOutcome
{
    bool read = false;           //!< a patrol read was issued
    Addr frame = 0;              //!< channel-local frame it read
    bool correctableError = false;
    bool uncorrectableError = false;
    bool retire = false;         //!< the frame was mapped out
};

/**
 * Patrol scrubber of one channel: walks the DRAM frames on the
 * configured cadence, draws ECC outcomes from its seeded stream, and
 * runs the repeat-CE retirement ladder. Frames with an uncorrectable
 * error are retired immediately while spare capacity lasts.
 */
class ScrubEngine
{
  public:
    ScrubEngine() = default;
    ScrubEngine(const ScrubConfig &config, Bytes capacity,
                std::uint64_t seed, unsigned channel);

    /** One demand request passed; maybe issue one patrol read. */
    ScrubOutcome tick();

    std::uint64_t retiredFrames() const { return retired_; }

  private:
    ScrubConfig config_;
    Bytes capacity_ = 0;
    double pending_ = 0;  //!< fractional requests toward the next read
    Addr walk_ = 0;       //!< next frame the scrubber will read
    Rng rng_;
    /** Correctable-error count per frame (the retirement ladder). */
    std::unordered_map<Addr, unsigned> ceCount_;
    std::uint64_t retired_ = 0;
};

/**
 * Per-channel maintenance front end owned by the ChannelController:
 * scrub ticks, row-activation accounting, refresh duty and the epoch
 * time/slot bookkeeping. Disabled (the default) it is a single branch
 * per hook and holds no RNG state.
 */
class MaintenanceEngine
{
  public:
    MaintenanceEngine() = default;
    MaintenanceEngine(const MaintenanceConfig &config, Bytes dramCapacity,
                      unsigned channel);

    bool enabled() const { return enabled_; }
    const MaintenanceConfig &config() const { return config_; }

    /** One demand request was handled; maybe issue one patrol read. */
    ScrubOutcome demandTick() { return scrub_.tick(); }

    /**
     * Record @p n row activations at channel-local byte address
     * @p local. Returns the targeted-refresh mitigations triggered;
     * their bank-blocking time accrues for drainTargetedTime().
     */
    unsigned noteActivation(Addr local, std::uint64_t n);

    /** Fraction of DRAM bank time lost to tREFI/tRFC refresh. */
    double refreshDuty() const { return config_.refresh.duty(); }

    /**
     * Mean extra load-to-use stall a demand access sees from refresh:
     * with probability duty it arrives during a REF and waits half the
     * residual tRFC on average.
     */
    double
    refreshDemandStall() const
    {
        double d = refreshDuty();
        return d > 0 ? d * config_.refresh.trfc * 0.5 : 0.0;
    }

    /** Targeted-refresh DRAM seconds accrued since the last drain. */
    double drainTargetedTime();

    /** Account DRAM seconds a patrol read occupied the device for. */
    void noteScrubTime(double seconds) { scrubTime_ += seconds; }
    double drainScrubTime();

    /**
     * Close one epoch of duration @p dt: returns the REF commands the
     * DIMM issued in it (fractional commands carry over, so slot
     * counts are exact over any epoch partition) and advances the
     * RowHammer window clock, resetting the tracker on tREFW rollover.
     */
    std::uint64_t closeEpoch(double dt);

    std::uint64_t retiredFrames() const { return scrub_.retiredFrames(); }
    std::uint64_t trackedRows() const { return tracker_.tracked(); }

    /** Re-seed every stream and clear accumulators (fresh benchmark). */
    void reset();

  private:
    MaintenanceConfig config_;
    Bytes capacity_ = 0;
    unsigned channel_ = 0;
    bool enabled_ = false;
    ScrubEngine scrub_;
    RowTracker tracker_;
    double targetedTime_ = 0;  //!< pending targeted-refresh seconds
    double scrubTime_ = 0;     //!< pending patrol-read device seconds
    double refreshCarry_ = 0;  //!< fractional REF commands carried over
    double windowClock_ = 0;   //!< seconds into the RowHammer window
};

} // namespace nvsim

#endif // NVSIM_MEM_MAINTENANCE_MAINTENANCE_HH
