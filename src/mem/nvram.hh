/**
 * @file
 * Optane DC persistent memory DIMM model.
 *
 * The key microarchitectural facts the paper (and Yang et al., FAST'20)
 * rely on:
 *
 *  - The 3D-XPoint media is accessed in 256 B blocks, while the DDR-T bus
 *    carries 64 B transactions. Sub-block demand accesses are amplified
 *    4x at the media unless on-DIMM buffering combines them.
 *  - Reads flow through a small read-combine buffer: a 64 B read brings
 *    the whole 256 B media block near the controller, so sequential 64 B
 *    reads cost one media read per block. Random 64 B reads thrash the
 *    buffer and pay full amplification.
 *  - Writes land in a write-pending queue (WPQ / XPBuffer). Sequential
 *    64 B stores merge into 256 B media writes; when the buffer runs out
 *    of entries (too many concurrent streams) partially filled blocks are
 *    flushed early, causing write amplification and the measured
 *    bandwidth droop beyond ~4 writer threads.
 *  - Media bandwidth is asymmetric and (for the paper's 512 GiB DIMMs)
 *    lower than the smaller DIMMs: ~5.3 GB/s read per DIMM.
 *
 * The device is functional about its buffers (real LRU structures keyed
 * by media block) and analytic about time: it accumulates demand and
 * media byte counts per epoch for the system bandwidth solver.
 */

#ifndef NVSIM_MEM_NVRAM_HH
#define NVSIM_MEM_NVRAM_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/types.hh"
#include "fault/fault.hh"

namespace nvsim
{

/** Configuration of one Optane DIMM. */
struct NvramParams
{
    Bytes capacity = 512 * kGiB;
    double readBandwidth = 5.3e9;   //!< media read GB/s (512 GiB DIMM)
    double writeBandwidth = 1.9e9;  //!< media write GB/s
    double readLatency = 305e-9;    //!< demand read load-to-use seconds
    double writeLatency = 95e-9;    //!< ADR-buffered write accept seconds
    unsigned readBufferEntries = 16;  //!< read-combine blocks retained
    unsigned wpqEntries = 16;         //!< write-pending queue blocks
    /**
     * Extra controller inefficiency per concurrent writer stream beyond
     * the knee: effective write bandwidth is divided by
     * (1 + writeContentionAlpha * max(0, streams - writeContentionKnee)).
     * Models the XPBuffer contention that makes aggregate write bandwidth
     * peak near 4 threads and droop slightly beyond.
     */
    double writeContentionAlpha = 0.01;
    unsigned writeContentionKnee = 4;
};

/** Per-epoch traffic accumulated by an NVRAM device. */
struct NvramEpoch
{
    std::uint64_t demandReads = 0;    //!< 64 B bus read transactions
    std::uint64_t demandWrites = 0;   //!< 64 B bus write transactions
    std::uint64_t mediaReadBlocks = 0;   //!< 256 B media reads
    std::uint64_t mediaWriteBlocks = 0;  //!< 256 B media writes
    std::uint64_t writerStreams = 0;  //!< distinct writer threads seen

    Bytes demandBytes() const
    {
        return (demandReads + demandWrites) * kLineSize;
    }
    Bytes mediaReadBytes() const
    {
        return mediaReadBlocks * kMediaBlockSize;
    }
    Bytes mediaWriteBytes() const
    {
        return mediaWriteBlocks * kMediaBlockSize;
    }
};

/**
 * One Optane DIMM with functional read-combine and write-pending
 * buffers.
 */
class NvramDevice
{
  public:
    explicit NvramDevice(const NvramParams &params);

    /**
     * 64 B demand read of the line at @p addr by @p thread. Returns
     * the media-fault outcome drawn from the attached FaultPlan (no
     * fault when no plan is attached or its rates are zero).
     */
    MediaFault read(Addr addr, std::uint16_t thread);

    /** 64 B demand write of the line at @p addr by @p thread. */
    MediaFault write(Addr addr, std::uint16_t thread);

    /** @name Bulk demand runs (batched access fast path)
     * Consecutive-line equivalents of read()/write(): @p lines 64 B
     * transactions starting at @p addr, leaving every buffer, fill
     * bitmap and counter bit-identical to the per-line loop. Only
     * valid with no fault plan attached (the per-request fault draw
     * is what the per-line path exists for).
     */
    ///@{
    void readRun(Addr addr, std::uint64_t lines);
    void writeRun(Addr addr, std::uint64_t lines, std::uint16_t thread);
    ///@}

    /**
     * Attach the channel's fault plan; media errors are drawn per
     * demand transaction. The device does not own the plan.
     */
    void setFaultPlan(FaultPlan *plan) { faultPlan_ = plan; }

    /**
     * Flush all partially merged WPQ blocks to media (end of benchmark /
     * quiesce point). Each occupied entry costs one media write.
     */
    void flushWpq();

    /** Traffic since the last drain; resets the epoch accumulator. */
    NvramEpoch drainEpoch();

    const NvramEpoch &epoch() const { return epoch_; }
    const NvramEpoch &total() const { return total_; }
    const NvramParams &params() const { return params_; }

    /**
     * Write-bandwidth efficiency for @p streams concurrent writers
     * (1.0 at or below the knee).
     */
    double writeEfficiency(std::uint64_t streams) const;

    /** Lifetime media write amplification (media bytes / demand bytes). */
    double writeAmplification() const;

    /** Lifetime media read amplification. */
    double readAmplification() const;

  private:
    /**
     * Tiny LRU buffer of media block addresses. Capacities are on the
     * order of 16 entries, so a linear scan over a vector is both simple
     * and fast.
     */
    struct BlockLru
    {
        explicit BlockLru(unsigned capacity) : capacity(capacity) {}

        /**
         * Touch @p block. Returns true on hit. On miss inserts and, if
         * over capacity, evicts the least recently used block into
         * @p evicted and sets @p did_evict.
         */
        bool touch(Addr block, Addr &evicted, bool &did_evict);

        /** Remove all blocks, invoking @p f on each occupied entry. */
        template <typename F>
        void
        drain(F &&f)
        {
            for (Addr block : order)
                f(block);
            order.clear();
        }

        unsigned capacity;
        std::vector<Addr> order;  //!< LRU order, back = most recent
    };

    NvramParams params_;
    NvramEpoch epoch_;
    NvramEpoch total_;
    FaultPlan *faultPlan_ = nullptr;  //!< not owned; may be null

    BlockLru readBuffer_;
    BlockLru wpq_;
    /** WPQ fill bitmaps: media block -> mask of present 64 B lines. */
    std::unordered_map<Addr, std::uint8_t> wpqFill_;
    /**
     * Writer-stream tracking: writerStamp_[thread] holds the epoch id
     * of that thread's last write, so counting distinct writers per
     * epoch is one indexed compare instead of a linear scan of every
     * demand write. The id bumps at each epoch drain.
     */
    std::vector<std::uint32_t> writerStamp_;
    std::uint32_t writerEpochId_ = 1;

    void noteWriter(std::uint16_t thread);
    void mediaWrite(Addr block);

    /** Drop @p block from the WPQ order (it was just touched: MRU). */
    void retireWpqBlock(Addr block);
};

} // namespace nvsim

#endif // NVSIM_MEM_NVRAM_HH
