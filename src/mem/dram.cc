#include "mem/dram.hh"

#include "mem/request.hh"

namespace nvsim
{

DramEpoch
DramDevice::drainEpoch()
{
    DramEpoch e = epoch_;
    total_.casReads += e.casReads;
    total_.casWrites += e.casWrites;
    epoch_ = DramEpoch{};
    return e;
}

const char *
cacheOutcomeName(CacheOutcome outcome)
{
    switch (outcome) {
      case CacheOutcome::Hit:
        return "hit";
      case CacheOutcome::MissClean:
        return "miss_clean";
      case CacheOutcome::MissDirty:
        return "miss_dirty";
      case CacheOutcome::DdoHit:
        return "ddo_hit";
      case CacheOutcome::Uncached:
        return "uncached";
    }
    return "unknown";
}

const char *
accessCauseName(AccessCause cause)
{
    switch (cause) {
      case AccessCause::TagProbe:
        return "tag_probe";
      case AccessCause::CacheFillRead:
        return "cache_fill_read";
      case AccessCause::CacheInsertWrite:
        return "cache_insert_write";
      case AccessCause::DataWrite:
        return "data_write";
      case AccessCause::DirtyWriteback:
        return "dirty_writeback";
      case AccessCause::DdoElideWrite:
        return "ddo_elide_write";
      case AccessCause::DirectAccess:
        return "direct_access";
      case AccessCause::DataRead:
        return "data_read";
      case AccessCause::BypassRead:
        return "bypass_read";
      case AccessCause::PatrolScrub:
        return "patrol_scrub";
      case AccessCause::TargetedRefresh:
        return "targeted_refresh";
      case AccessCause::QueueWait:
        return "queue_wait";
      case AccessCause::WriteDrain:
        return "write_drain";
      case AccessCause::BankConflict:
        return "bank_conflict";
    }
    return "unknown";
}

} // namespace nvsim
