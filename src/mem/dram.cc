#include "mem/dram.hh"

#include "mem/request.hh"

namespace nvsim
{

DramEpoch
DramDevice::drainEpoch()
{
    DramEpoch e = epoch_;
    total_.casReads += e.casReads;
    total_.casWrites += e.casWrites;
    epoch_ = DramEpoch{};
    return e;
}

const char *
cacheOutcomeName(CacheOutcome outcome)
{
    switch (outcome) {
      case CacheOutcome::Hit:
        return "hit";
      case CacheOutcome::MissClean:
        return "miss_clean";
      case CacheOutcome::MissDirty:
        return "miss_dirty";
      case CacheOutcome::DdoHit:
        return "ddo_hit";
      case CacheOutcome::Uncached:
        return "uncached";
    }
    return "unknown";
}

} // namespace nvsim
