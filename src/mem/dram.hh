/**
 * @file
 * DRAM DIMM model.
 *
 * One DDR4 DIMM per memory channel (32 GiB on the paper's testbed). The
 * model is analytic: it accumulates column-access-strobe (CAS) counts and
 * bytes per epoch; the system-level bandwidth solver turns bytes into
 * time. Tags for the 2LM cache ride in the ECC bits, so a tag probe and
 * a data access are the *same* DRAM transaction — the DramCache logic
 * accounts for that by issuing one read for "fetch tag and data".
 */

#ifndef NVSIM_MEM_DRAM_HH
#define NVSIM_MEM_DRAM_HH

#include "core/types.hh"

namespace nvsim
{

/** Configuration of a DRAM DIMM. */
struct DramParams
{
    Bytes capacity = 32 * kGiB;
    double bandwidth = 19.2e9;     //!< sustainable device GB/s
    double latency = 81e-9;        //!< load-to-use seconds
};

/** Per-epoch traffic accumulated by a DRAM device. */
struct DramEpoch
{
    std::uint64_t casReads = 0;   //!< 64 B read transactions
    std::uint64_t casWrites = 0;  //!< 64 B write transactions

    Bytes bytes() const { return (casReads + casWrites) * kLineSize; }
};

/**
 * A DRAM DIMM. Functionally it is only a traffic sink (the simulator
 * stores no data); its role is precise CAS accounting plus latency and
 * bandwidth parameters for the timing model.
 */
class DramDevice
{
  public:
    explicit DramDevice(const DramParams &params) : params_(params) {}

    /** Record @p lines 64 B read transactions. */
    void read(std::uint32_t lines = 1) { epoch_.casReads += lines; }

    /** Record @p lines 64 B write transactions. */
    void write(std::uint32_t lines = 1) { epoch_.casWrites += lines; }

    /** Traffic since the last drain; resets the epoch accumulator. */
    DramEpoch drainEpoch();

    /** Traffic in the current (undrained) epoch. */
    const DramEpoch &epoch() const { return epoch_; }

    /** Lifetime totals. */
    const DramEpoch &total() const { return total_; }

    const DramParams &params() const { return params_; }

  private:
    DramParams params_;
    DramEpoch epoch_;
    DramEpoch total_;
};

} // namespace nvsim

#endif // NVSIM_MEM_DRAM_HH
