/**
 * @file
 * Tensor liveness analysis over a ComputeGraph schedule.
 *
 * A tensor is live from the op that defines it until its last consumer.
 * The paper's Figure 5d is exactly this information projected onto the
 * ngraph arena: live memory accumulates through the forward pass (saved
 * activations) and drains through the backward pass, and memory that
 * "will be written before read" is semantically free even though the
 * DRAM cache still sees it as dirty.
 */

#ifndef NVSIM_DNN_LIVENESS_HH
#define NVSIM_DNN_LIVENESS_HH

#include <vector>

#include "dnn/graph.hh"

namespace nvsim::dnn
{

/** Live interval of one tensor in schedule-step units. */
struct LiveInterval
{
    int def = -1;      //!< defining op index (-1: live-in / persistent)
    int lastUse = -1;  //!< last consuming op index (-1: never used)

    /** Is the tensor live at step @p i (inclusive interval)? */
    bool
    liveAt(int i) const
    {
        return i >= def && i <= lastUse;
    }
};

/**
 * Compute intervals for every tensor. Weights and weight gradients are
 * treated as persistent (live across the whole schedule).
 */
std::vector<LiveInterval> computeLiveness(const ComputeGraph &graph);

/**
 * Live bytes (arena-managed tensors only) after each schedule step.
 * Index i holds the bytes live after executing op i.
 */
std::vector<Bytes> liveBytesPerStep(const ComputeGraph &graph,
                                    const std::vector<LiveInterval> &live);

/** Peak of liveBytesPerStep. */
Bytes peakLiveBytes(const ComputeGraph &graph,
                    const std::vector<LiveInterval> &live);

} // namespace nvsim::dnn

#endif // NVSIM_DNN_LIVENESS_HH
