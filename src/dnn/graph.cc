#include "dnn/graph.hh"

#include "core/logging.hh"

namespace nvsim::dnn
{

const char *
opKindName(OpKind kind)
{
    switch (kind) {
      case OpKind::Conv:
        return "Conv";
      case OpKind::BatchNorm:
        return "BatchNorm";
      case OpKind::Relu:
        return "ReLU";
      case OpKind::Concat:
        return "Concat";
      case OpKind::Pool:
        return "Pool";
      case OpKind::Gemm:
        return "Gemm";
      case OpKind::Add:
        return "Add";
      case OpKind::Loss:
        return "Loss";
      case OpKind::ConvBack:
        return "ConvBackprop";
      case OpKind::BatchNormBack:
        return "BatchNormBackprop";
      case OpKind::ReluBack:
        return "ReLUBackprop";
      case OpKind::ConcatBack:
        return "ConcatBackprop";
      case OpKind::PoolBack:
        return "PoolBackprop";
      case OpKind::GemmBack:
        return "GemmBackprop";
      case OpKind::AddBack:
        return "AddBackprop";
      case OpKind::LossBack:
        return "LossBackprop";
    }
    return "unknown";
}

bool
isBackwardOp(OpKind kind)
{
    switch (kind) {
      case OpKind::ConvBack:
      case OpKind::BatchNormBack:
      case OpKind::ReluBack:
      case OpKind::ConcatBack:
      case OpKind::PoolBack:
      case OpKind::GemmBack:
      case OpKind::AddBack:
      case OpKind::LossBack:
        return true;
      default:
        return false;
    }
}

OpKind
backwardOf(OpKind kind)
{
    switch (kind) {
      case OpKind::Conv:
        return OpKind::ConvBack;
      case OpKind::BatchNorm:
        return OpKind::BatchNormBack;
      case OpKind::Relu:
        return OpKind::ReluBack;
      case OpKind::Concat:
        return OpKind::ConcatBack;
      case OpKind::Pool:
        return OpKind::PoolBack;
      case OpKind::Gemm:
        return OpKind::GemmBack;
      case OpKind::Add:
        return OpKind::AddBack;
      case OpKind::Loss:
        return OpKind::LossBack;
      default:
        panic("backwardOf called on backward op %s", opKindName(kind));
    }
}

bool
backwardNeedsInputs(OpKind kind)
{
    switch (kind) {
      case OpKind::Conv:       // input activation for the filter grad
      case OpKind::BatchNorm:  // input for mean/variance grads
      case OpKind::Gemm:       // input activation for the weight grad
      case OpKind::Pool:       // argmax / divisor information
      case OpKind::Loss:       // predictions
        return true;
      case OpKind::Relu:       // sign recoverable from the output,
                               // which the next kernel saves anyway
      case OpKind::Concat:     // backward is a pure split of the grad
      case OpKind::Add:        // backward copies the grad to both sides
        return false;
      default:
        return false;
    }
}

TensorId
ComputeGraph::addTensor(const std::string &name, Bytes bytes,
                        TensorKind kind)
{
    Tensor t;
    t.id = static_cast<TensorId>(tensors_.size());
    t.name = name;
    t.bytes = bytes;
    t.kind = kind;
    tensors_.push_back(std::move(t));
    return tensors_.back().id;
}

OpId
ComputeGraph::addOp(const std::string &name, OpKind kind,
                    std::vector<TensorId> inputs,
                    std::vector<TensorId> outputs, double flops)
{
    Op op;
    op.id = static_cast<OpId>(ops_.size());
    op.name = name;
    op.kind = kind;
    op.inputs = std::move(inputs);
    op.outputs = std::move(outputs);
    op.flops = flops;

    for (TensorId tid : op.inputs)
        tensors_[tid].consumers.push_back(op.id);
    for (TensorId tid : op.outputs) {
        // Gradient tensors may be produced repeatedly (accumulation at
        // fan-out points); keep the first producer for liveness.
        if (tensors_[tid].producer == ~0u)
            tensors_[tid].producer = op.id;
    }
    ops_.push_back(std::move(op));
    if (!isBackwardOp(kind))
        forwardOps_ = ops_.size();
    return ops_.back().id;
}

void
ComputeGraph::buildBackward()
{
    if (backwardBuilt_)
        panic("backward pass already built for %s", name_.c_str());
    backwardBuilt_ = true;

    std::size_t n_fwd = ops_.size();
    forwardOps_ = n_fwd;

    // Gradient tensor per forward activation output, created lazily.
    std::vector<TensorId> grad_of(tensors_.size(), kNoTensor);
    std::vector<bool> grad_produced;
    auto grad = [&](TensorId tid) {
        if (grad_of[tid] == kNoTensor) {
            const Tensor &t = tensors_[tid];
            bool weight = t.kind == TensorKind::Weight;
            TensorId g =
                addTensor("d_" + t.name, t.bytes,
                          weight ? TensorKind::WeightGrad
                                 : TensorKind::Gradient);
            grad_of.resize(tensors_.size(), kNoTensor);
            grad_of[tid] = g;
        }
        return grad_of[tid];
    };

    for (std::size_t i = n_fwd; i-- > 0;) {
        // Copy: addOp invalidates references into ops_.
        Op fwd = ops_[i];
        OpKind bkind = backwardOf(fwd.kind);

        std::vector<TensorId> inputs;
        // Output gradients flow in...
        for (TensorId out : fwd.outputs)
            inputs.push_back(grad(out));
        // ...weights are needed for the data gradient...
        for (TensorId in : fwd.inputs) {
            if (tensors_[in].kind == TensorKind::Weight)
                inputs.push_back(in);
        }
        // ...and saved forward tensors if the kernel requires them.
        if (backwardNeedsInputs(fwd.kind)) {
            for (TensorId in : fwd.inputs) {
                if (tensors_[in].kind == TensorKind::Activation)
                    inputs.push_back(in);
            }
        }

        std::vector<TensorId> outputs;
        for (TensorId in : fwd.inputs) {
            const Tensor &t = tensors_[in];
            if (t.kind == TensorKind::Activation) {
                // Gradient w.r.t. every activation input, except the
                // network input itself (producer == none, no grad
                // needed).
                if (t.producer != ~0u)
                    outputs.push_back(grad(in));
            } else if (t.kind == TensorKind::Weight) {
                outputs.push_back(grad(in));
            }
        }

        // Fan-out accumulation: a gradient produced by an earlier
        // backward op is read-modified-written here, not overwritten.
        grad_produced.resize(tensors_.size(), false);
        for (TensorId out : outputs) {
            if (grad_produced[out])
                inputs.push_back(out);
            grad_produced[out] = true;
        }

        // Backward convolutions cost roughly 2x the forward FLOPs
        // (data gradient + filter gradient); other kernels about 1x.
        double factor =
            (fwd.kind == OpKind::Conv || fwd.kind == OpKind::Gemm) ? 2.0
                                                                   : 1.0;
        addOp(fwd.name + "_bwd", bkind, std::move(inputs),
              std::move(outputs), fwd.flops * factor);
    }
}

Bytes
ComputeGraph::weightBytes() const
{
    Bytes total = 0;
    for (const auto &t : tensors_) {
        if (t.kind == TensorKind::Weight || t.kind == TensorKind::WeightGrad)
            total += t.bytes;
    }
    return total;
}

Bytes
ComputeGraph::activationBytes() const
{
    Bytes total = 0;
    for (const auto &t : tensors_) {
        if (t.kind == TensorKind::Activation ||
            t.kind == TensorKind::Gradient)
            total += t.bytes;
    }
    return total;
}

double
ComputeGraph::totalFlops() const
{
    double total = 0;
    for (const auto &op : ops_)
        total += op.flops;
    return total;
}

void
ComputeGraph::validate() const
{
    std::vector<bool> defined(tensors_.size(), false);
    for (const auto &t : tensors_) {
        if (t.producer == ~0u)
            defined[t.id] = true;  // graph input / weight
    }
    for (const auto &op : ops_) {
        for (TensorId in : op.inputs) {
            if (!defined[in])
                panic("op %s consumes undefined tensor %s",
                      op.name.c_str(), tensors_[in].name.c_str());
        }
        for (TensorId out : op.outputs)
            defined[out] = true;
    }
}

} // namespace nvsim::dnn
