/**
 * @file
 * VGG-19 builder (Simonyan & Zisserman, the paper's reference [47]).
 * A plain deep CNN: five conv stacks with 2x2 max pools between them,
 * then three fully connected layers. No batch norm and no concats —
 * the contrast workload to DenseNet: far fewer bandwidth-bound
 * kernels, so 2LM hurts it less.
 */

#include "dnn/networks.hh"

namespace nvsim::dnn
{

ComputeGraph
buildVgg19(std::uint64_t batch, bool training)
{
    const struct
    {
        unsigned convs;
        std::uint64_t channels;
    } stacks[5] = {{2, 64}, {2, 128}, {4, 256}, {4, 512}, {4, 512}};

    NetBuilder b("vgg19");
    TensorId x = b.input(Shape{batch, 3, 224, 224});
    for (const auto &stack : stacks) {
        for (unsigned i = 0; i < stack.convs; ++i) {
            x = b.conv(x, stack.channels, 3, 1, "conv3x3");
            x = b.relu(x);
        }
        x = b.pool(x, 2, 2);
    }
    x = b.gemm(x, 4096);
    x = b.relu(x);
    x = b.gemm(x, 4096);
    x = b.relu(x);
    x = b.gemm(x, 1000);
    b.loss(x);
    return b.finish(training);
}

} // namespace nvsim::dnn
