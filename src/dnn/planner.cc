#include "dnn/planner.hh"

#include "core/logging.hh"
#include "dnn/arena.hh"

namespace nvsim::dnn
{

Bytes
scaledTensorBytes(Bytes logical, std::uint64_t scale)
{
    Bytes scaled = (logical + scale - 1) / scale;
    scaled = (scaled + kLineSize - 1) & ~(kLineSize - 1);
    return scaled ? scaled : kLineSize;
}

ArenaPlan
planArena(const ComputeGraph &graph, std::uint64_t scale)
{
    ArenaPlan plan;
    plan.liveness = computeLiveness(graph);
    plan.placement.assign(graph.tensors().size(), TensorPlacement{});

    // Persistent region: weights and weight gradients, packed linearly.
    Bytes wbrk = 0;
    for (const auto &t : graph.tensors()) {
        if (t.kind == TensorKind::Weight ||
            t.kind == TensorKind::WeightGrad) {
            TensorPlacement &p = plan.placement[t.id];
            p.bytes = scaledTensorBytes(t.bytes, scale);
            p.offset = wbrk;
            p.inArena = false;
            wbrk += p.bytes;
        }
    }
    plan.weightBytes = wbrk;

    // Arena: walk the schedule, allocating outputs at their definition
    // and freeing tensors after their last use.
    ArenaAllocator arena;
    const auto &ops = graph.schedule();

    // Graph inputs (no producer) are allocated up front.
    for (const auto &t : graph.tensors()) {
        if (t.kind != TensorKind::Activation &&
            t.kind != TensorKind::Gradient)
            continue;
        if (plan.liveness[t.id].def < 0 &&
            plan.liveness[t.id].lastUse >= 0) {
            TensorPlacement &p = plan.placement[t.id];
            p.bytes = scaledTensorBytes(t.bytes, scale);
            p.offset = *arena.alloc(p.bytes);
            p.inArena = true;
        }
    }

    for (std::size_t i = 0; i < ops.size(); ++i) {
        for (TensorId out : ops[i].outputs) {
            const Tensor &t = graph.tensor(out);
            if (t.kind != TensorKind::Activation &&
                t.kind != TensorKind::Gradient)
                continue;
            TensorPlacement &p = plan.placement[out];
            if (p.bytes)
                continue;  // multi-output redefinition guard
            p.bytes = scaledTensorBytes(t.bytes, scale);
            auto off = arena.alloc(p.bytes);
            nvsim_assert(off.has_value());
            p.offset = *off;
            p.inArena = true;
        }
        // Free everything whose last use is this op.
        for (const auto &t : graph.tensors()) {
            if (t.kind != TensorKind::Activation &&
                t.kind != TensorKind::Gradient)
                continue;
            const LiveInterval &li = plan.liveness[t.id];
            if (li.lastUse == static_cast<int>(i) &&
                plan.placement[t.id].inArena) {
                arena.free(plan.placement[t.id].offset,
                           plan.placement[t.id].bytes);
            }
        }
    }

    plan.arenaBytes = arena.highWater();
    return plan;
}

} // namespace nvsim::dnn
