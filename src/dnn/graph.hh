/**
 * @file
 * Compute-graph IR for CNN training workloads.
 *
 * Mirrors the structure the paper's ngraph-compiled networks have: a
 * static DAG of kernels (Conv, BatchNorm, Concat, ...) over tensors
 * whose shapes — and therefore byte sizes and FLOP counts — are known
 * ahead of time. buildBackward() appends the training backward pass:
 * one gradient kernel per forward kernel, consuming the output gradient
 * plus whichever forward tensors the kernel must keep alive. That saved
 * set is what makes live memory accumulate through the forward pass and
 * drain through the backward pass (Figure 5d).
 */

#ifndef NVSIM_DNN_GRAPH_HH
#define NVSIM_DNN_GRAPH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hh"

namespace nvsim::dnn
{

using TensorId = std::uint32_t;
using OpId = std::uint32_t;

inline constexpr TensorId kNoTensor = ~0u;

/** What a tensor holds; drives placement and liveness rules. */
enum class TensorKind : std::uint8_t {
    Activation,  //!< intermediate feature map (arena managed)
    Weight,      //!< trainable parameter (persistent)
    Gradient,    //!< gradient of an activation (arena managed)
    WeightGrad,  //!< gradient of a parameter (persistent)
};

/** Kernel families with distinct compute/memory character. */
enum class OpKind : std::uint8_t {
    Conv,          //!< convolution (compute heavy)
    BatchNorm,     //!< batch normalization (bandwidth bound)
    Relu,          //!< activation function (bandwidth bound, cheap)
    Concat,        //!< concatenation (pure data movement)
    Pool,          //!< max/avg pooling
    Gemm,          //!< fully connected / matmul
    Add,           //!< elementwise residual add
    Loss,          //!< softmax + loss at the head
    ConvBack,      //!< backward of Conv (data + filter grads)
    BatchNormBack, //!< backward of BatchNorm
    ReluBack,
    ConcatBack,
    PoolBack,
    GemmBack,
    AddBack,
    LossBack,
};

const char *opKindName(OpKind kind);

/** Is this a backward-pass kernel? */
bool isBackwardOp(OpKind kind);

/** Backward kind corresponding to a forward kind. */
OpKind backwardOf(OpKind kind);

/**
 * Does the backward kernel of this op need the op's *input* tensors
 * (forcing them to stay live across the forward pass)?
 */
bool backwardNeedsInputs(OpKind kind);

/** A tensor: logically a typed n-d array; we track bytes and liveness. */
struct Tensor
{
    TensorId id = kNoTensor;
    std::string name;
    Bytes bytes = 0;          //!< unscaled logical size
    TensorKind kind = TensorKind::Activation;
    OpId producer = ~0u;      //!< op that defines it (~0 for graph inputs)
    std::vector<OpId> consumers;
};

/** A kernel instance in the schedule. */
struct Op
{
    OpId id = 0;
    std::string name;
    OpKind kind = OpKind::Conv;
    std::vector<TensorId> inputs;
    std::vector<TensorId> outputs;
    double flops = 0;  //!< floating point operations in this kernel
};

/** A static training graph with a fixed (topological) schedule. */
class ComputeGraph
{
  public:
    explicit ComputeGraph(std::string name) : name_(std::move(name)) {}

    /** Create a tensor. */
    TensorId addTensor(const std::string &name, Bytes bytes,
                       TensorKind kind = TensorKind::Activation);

    /**
     * Append an op to the schedule. Ops must be added in executable
     * (topological) order, which the builders do naturally.
     */
    OpId addOp(const std::string &name, OpKind kind,
               std::vector<TensorId> inputs,
               std::vector<TensorId> outputs, double flops);

    /**
     * Append the backward pass: walks the forward schedule in reverse
     * and emits one gradient kernel per forward kernel. Gradient
     * tensors mirror the forward activations' sizes. Weight gradients
     * are created for every weight input.
     */
    void buildBackward();

    const std::string &name() const { return name_; }
    const std::vector<Op> &schedule() const { return ops_; }
    const std::vector<Tensor> &tensors() const { return tensors_; }
    const Tensor &tensor(TensorId id) const { return tensors_[id]; }

    /** Number of forward ops (the backward pass starts after these). */
    std::size_t forwardOps() const { return forwardOps_; }

    /** Sum of weight (+ weight gradient) bytes. */
    Bytes weightBytes() const;

    /** Sum of all activation/gradient bytes (upper bound on arena). */
    Bytes activationBytes() const;

    /** Total floating point operations in the schedule. */
    double totalFlops() const;

    /** Sanity-check the schedule is topologically ordered. */
    void validate() const;

  private:
    std::string name_;
    std::vector<Tensor> tensors_;
    std::vector<Op> ops_;
    std::size_t forwardOps_ = 0;
    bool backwardBuilt_ = false;
};

} // namespace nvsim::dnn

#endif // NVSIM_DNN_GRAPH_HH
