#include "dnn/networks.hh"

#include "core/logging.hh"

namespace nvsim::dnn
{

TensorId
NetBuilder::newActivation(const std::string &tag, const Shape &shape)
{
    TensorId id = graph_.addTensor(
        strprintf("%s_%u", tag.c_str(), counter_++), shape.bytes(),
        TensorKind::Activation);
    shapes_[id] = shape;
    return id;
}

TensorId
NetBuilder::input(const Shape &shape)
{
    return newActivation("input", shape);
}

TensorId
NetBuilder::conv(TensorId in, std::uint64_t out_c, unsigned kernel,
                 unsigned stride, const std::string &tag)
{
    const Shape &is = shapes_.at(in);
    Shape os{is.n, out_c, (is.h + stride - 1) / stride,
             (is.w + stride - 1) / stride};
    Bytes wbytes = is.c * out_c * kernel * kernel * 4;
    TensorId weight = graph_.addTensor(
        strprintf("w_%s_%u", tag.c_str(), counter_), wbytes,
        TensorKind::Weight);
    TensorId out = newActivation(tag, os);
    double flops = 2.0 * static_cast<double>(os.elems()) *
                   static_cast<double>(is.c) * kernel * kernel;
    graph_.addOp(strprintf("%s_%u", tag.c_str(), counter_), OpKind::Conv,
                 {in, weight}, {out}, flops);
    return out;
}

TensorId
NetBuilder::batchNorm(TensorId in)
{
    const Shape &is = shapes_.at(in);
    TensorId out = newActivation("bn", is);
    double flops = 10.0 * static_cast<double>(is.elems());
    graph_.addOp(strprintf("bn_%u", counter_), OpKind::BatchNorm, {in},
                 {out}, flops);
    return out;
}

TensorId
NetBuilder::relu(TensorId in)
{
    const Shape &is = shapes_.at(in);
    TensorId out = newActivation("relu", is);
    graph_.addOp(strprintf("relu_%u", counter_), OpKind::Relu, {in},
                 {out}, static_cast<double>(is.elems()));
    return out;
}

TensorId
NetBuilder::pool(TensorId in, unsigned kernel, unsigned stride,
                 const std::string &tag)
{
    const Shape &is = shapes_.at(in);
    Shape os{is.n, is.c, (is.h + stride - 1) / stride,
             (is.w + stride - 1) / stride};
    TensorId out = newActivation(tag, os);
    double flops = static_cast<double>(os.elems()) * kernel * kernel;
    graph_.addOp(strprintf("%s_%u", tag.c_str(), counter_), OpKind::Pool,
                 {in}, {out}, flops);
    return out;
}

TensorId
NetBuilder::globalPool(TensorId in)
{
    const Shape &is = shapes_.at(in);
    Shape os{is.n, is.c, 1, 1};
    TensorId out = newActivation("gap", os);
    graph_.addOp(strprintf("gap_%u", counter_), OpKind::Pool, {in},
                 {out}, static_cast<double>(is.elems()));
    return out;
}

TensorId
NetBuilder::concat(const std::vector<TensorId> &ins)
{
    nvsim_assert(!ins.empty());
    Shape os = shapes_.at(ins[0]);
    std::uint64_t c = 0;
    for (TensorId t : ins)
        c += shapes_.at(t).c;
    os.c = c;
    TensorId out = newActivation("concat", os);
    graph_.addOp(strprintf("concat_%u", counter_), OpKind::Concat,
                 std::vector<TensorId>(ins), {out}, 0.0);
    return out;
}

TensorId
NetBuilder::add(TensorId a, TensorId b)
{
    const Shape &is = shapes_.at(a);
    TensorId out = newActivation("add", is);
    graph_.addOp(strprintf("add_%u", counter_), OpKind::Add, {a, b},
                 {out}, static_cast<double>(is.elems()));
    return out;
}

TensorId
NetBuilder::gemm(TensorId in, std::uint64_t out_features)
{
    const Shape &is = shapes_.at(in);
    std::uint64_t in_features = is.c * is.h * is.w;
    Shape os{is.n, out_features, 1, 1};
    TensorId weight = graph_.addTensor(
        strprintf("w_fc_%u", counter_), in_features * out_features * 4,
        TensorKind::Weight);
    TensorId out = newActivation("fc", os);
    double flops = 2.0 * static_cast<double>(is.n) *
                   static_cast<double>(in_features) *
                   static_cast<double>(out_features);
    graph_.addOp(strprintf("fc_%u", counter_), OpKind::Gemm, {in, weight},
                 {out}, flops);
    return out;
}

TensorId
NetBuilder::loss(TensorId in)
{
    const Shape &is = shapes_.at(in);
    Shape os{is.n, 1, 1, 1};
    TensorId out = newActivation("loss", os);
    graph_.addOp(strprintf("loss_%u", counter_), OpKind::Loss, {in},
                 {out}, 5.0 * static_cast<double>(is.elems()));
    return out;
}

ComputeGraph
NetBuilder::finish(bool training)
{
    if (training)
        graph_.buildBackward();
    graph_.validate();
    return std::move(graph_);
}

ComputeGraph
buildTinyCnn(std::uint64_t batch, bool training)
{
    NetBuilder b("tiny_cnn");
    TensorId x = b.input(Shape{batch, 3, 32, 32});
    x = b.conv(x, 16, 3);
    x = b.batchNorm(x);
    x = b.relu(x);
    x = b.conv(x, 32, 3, 2);
    x = b.batchNorm(x);
    x = b.relu(x);
    x = b.globalPool(x);
    x = b.gemm(x, 10);
    b.loss(x);
    return b.finish(training);
}

ComputeGraph
buildNetwork(const std::string &name, std::uint64_t batch, bool training)
{
    if (name == "densenet264")
        return buildDenseNet264(batch, training);
    if (name == "resnet200")
        return buildResNet200(batch, training);
    if (name == "inceptionv4")
        return buildInceptionV4(batch, training);
    if (name == "vgg19")
        return buildVgg19(batch, training);
    if (name == "tiny")
        return buildTinyCnn(batch, training);
    fatal("unknown network '%s'", name.c_str());
}

} // namespace nvsim::dnn
