/**
 * @file
 * DenseNet 264 builder (Huang et al., CVPR'17): initial 7x7 stem, four
 * dense blocks of 6 / 12 / 64 / 48 bottleneck layers with growth rate
 * 32, compression-0.5 transitions. Each dense layer is the sequence the
 * paper describes in Section V-C: Concat, BatchNorm, Conv(1x1),
 * BatchNorm, Conv(3x3) — the Concat and first BatchNorm operate on the
 * wide concatenated features and are the memory-bound bottleneck of
 * Figure 6.
 */

#include <vector>

#include "dnn/networks.hh"

namespace nvsim::dnn
{

namespace
{

/** One bottleneck dense layer; returns the new k-channel feature. */
TensorId
denseLayer(NetBuilder &b, const std::vector<TensorId> &features,
           std::uint64_t growth)
{
    TensorId cat = b.concat(features);
    TensorId x = b.batchNorm(cat);
    x = b.relu(x);
    x = b.conv(x, 4 * growth, 1, 1, "conv1x1");
    x = b.batchNorm(x);
    x = b.relu(x);
    x = b.conv(x, growth, 3, 1, "conv3x3");
    return x;
}

} // namespace

ComputeGraph
buildDenseNet264(std::uint64_t batch, bool training)
{
    const std::uint64_t growth = 32;
    const unsigned blocks[4] = {6, 12, 64, 48};

    NetBuilder b("densenet264");
    TensorId x = b.input(Shape{batch, 3, 224, 224});

    // Stem: 7x7/2 conv, BN, ReLU, 3x3/2 max pool -> 56x56 x 2k.
    x = b.conv(x, 2 * growth, 7, 2, "stem_conv");
    x = b.batchNorm(x);
    x = b.relu(x);
    x = b.pool(x, 3, 2, "stem_pool");

    std::uint64_t channels = 2 * growth;
    for (unsigned blk = 0; blk < 4; ++blk) {
        std::vector<TensorId> features{x};
        for (unsigned layer = 0; layer < blocks[blk]; ++layer) {
            TensorId f = denseLayer(b, features, growth);
            features.push_back(f);
            channels += growth;
        }
        x = b.concat(features);
        if (blk < 3) {
            // Transition: BN, 1x1 conv (compression 0.5), 2x2 avg pool.
            x = b.batchNorm(x);
            x = b.relu(x);
            channels /= 2;
            x = b.conv(x, channels, 1, 1, "trans_conv");
            x = b.pool(x, 2, 2, "trans_pool");
        }
    }

    x = b.batchNorm(x);
    x = b.relu(x);
    x = b.globalPool(x);
    x = b.gemm(x, 1000);
    b.loss(x);
    return b.finish(training);
}

} // namespace nvsim::dnn
