/**
 * @file
 * DLRM-style embedding workload.
 *
 * The paper's introduction motivates NVRAM capacity with recommendation
 * models (DLRM) whose embedding tables reach hundreds of gigabytes, and
 * cites Eisenman et al.'s Bandana, which stores such tables on NVM.
 * This workload reproduces that access pattern as an extension
 * experiment: per sample, a handful of pooled sparse lookups gather
 * 256 B rows (one Optane media block each) from huge tables under a
 * Zipf popularity distribution, followed by dense MLP compute.
 *
 * Three deployments mirror the paper's overall argument:
 *  - 2LM: tables behind the hardware DRAM cache (inserts on every
 *    missed gather pollute the cache; trained updates dirty it);
 *  - 1LM app direct: tables read in place from NVRAM;
 *  - software-cached: the popular head of each table is pinned in
 *    DRAM, the cold tail stays in NVRAM (Bandana's approach).
 */

#ifndef NVSIM_DNN_EMBEDDING_HH
#define NVSIM_DNN_EMBEDDING_HH

#include <vector>

#include "imc/counters.hh"
#include "sys/memsys.hh"

namespace nvsim::dnn
{

/** How the embedding tables are placed. */
enum class EmbeddingPlacement : std::uint8_t {
    TwoLm,          //!< memory mode, hardware managed
    AppDirect,      //!< 1LM, tables in NVRAM, accessed in place
    SoftwareCached, //!< 1LM, hot rows pinned in DRAM, cold in NVRAM
};

const char *embeddingPlacementName(EmbeddingPlacement placement);

/** Workload parameters. */
struct EmbeddingConfig
{
    unsigned numTables = 8;
    std::uint64_t rowsPerTable = 1u << 16;
    unsigned rowBytes = 256;       //!< one Optane media block
    unsigned lookupsPerSample = 4; //!< pooled lookups per table
    unsigned batch = 256;          //!< samples per batch
    unsigned threads = 24;
    /**
     * Popularity skew: row = rows * u^skew. Larger values concentrate
     * traffic on the head of each table (approximate Zipf).
     */
    double skew = 3.0;
    /** Fraction of rows (hottest first) pinned in DRAM when software
     *  cached. */
    double hotFraction = 0.1;
    /** Training: scatter a gradient update back to each gathered row. */
    bool updateRows = false;
    /** Dense-MLP FLOPs per sample (scaled by the system scale). */
    double mlpFlopsPerSample = 4e6;
    std::uint64_t seed = 1;

    Bytes
    tableBytes() const
    {
        return static_cast<Bytes>(rowsPerTable) * rowBytes;
    }
    Bytes totalBytes() const { return tableBytes() * numTables; }
};

/** Result of one batch run. */
struct EmbeddingResult
{
    double seconds = 0;
    std::uint64_t lookups = 0;
    PerfCounters counters;
    double hotHitFraction = 0;  //!< lookups served from the DRAM head

    double
    lookupsPerSecond() const
    {
        return seconds > 0 ? static_cast<double>(lookups) / seconds : 0;
    }
};

/** One embedding deployment bound to a machine. */
class EmbeddingWorkload
{
  public:
    /**
     * Allocates the tables according to @p placement. The machine's
     * mode must agree (TwoLm vs OneLm).
     */
    EmbeddingWorkload(MemorySystem &sys, const EmbeddingConfig &config,
                      EmbeddingPlacement placement);

    /** Run one batch of pooled lookups (+ optional updates) + MLP. */
    EmbeddingResult runBatch();

    EmbeddingPlacement placement() const { return placement_; }
    const EmbeddingConfig &config() const { return config_; }

    /** Rows pinned hot per table (SoftwareCached only). */
    std::uint64_t hotRows() const { return hotRows_; }

  private:
    /** Base address of @p row in @p table, honoring the placement. */
    Addr rowAddr(unsigned table, std::uint64_t row) const;

    MemorySystem &sys_;
    EmbeddingConfig config_;
    EmbeddingPlacement placement_;
    std::uint64_t hotRows_ = 0;
    std::vector<Region> tables_;     //!< cold/full tables
    std::vector<Region> hotHeads_;   //!< DRAM-pinned heads
    std::uint64_t rngState_;
};

} // namespace nvsim::dnn

#endif // NVSIM_DNN_EMBEDDING_HH
