#include "dnn/arena.hh"

#include "core/logging.hh"

namespace nvsim::dnn
{

ArenaAllocator::ArenaAllocator(Bytes limit) : limit_(limit) {}

std::optional<Addr>
ArenaAllocator::alloc(Bytes size)
{
    if (size == 0)
        size = 1;

    // First fit among the free gaps.
    for (auto it = freeBlocks_.begin(); it != freeBlocks_.end(); ++it) {
        if (it->second >= size) {
            Addr offset = it->first;
            Bytes remaining = it->second - size;
            freeBlocks_.erase(it);
            if (remaining > 0)
                freeBlocks_.emplace(offset + size, remaining);
            inUse_ += size;
            return offset;
        }
    }

    // Extend the arena.
    if (limit_ != kUnlimited && brk_ + size > limit_)
        return std::nullopt;
    Addr offset = brk_;
    brk_ += size;
    highWater_ = std::max(highWater_, brk_);
    inUse_ += size;
    return offset;
}

void
ArenaAllocator::free(Addr offset, Bytes size)
{
    if (size == 0)
        size = 1;
    nvsim_assert(inUse_ >= size);
    inUse_ -= size;

    auto [it, inserted] = freeBlocks_.emplace(offset, size);
    nvsim_assert(inserted);

    // Coalesce with the successor.
    auto next = std::next(it);
    if (next != freeBlocks_.end() &&
        it->first + it->second == next->first) {
        it->second += next->second;
        freeBlocks_.erase(next);
    }
    // Coalesce with the predecessor.
    if (it != freeBlocks_.begin()) {
        auto prev = std::prev(it);
        if (prev->first + prev->second == it->first) {
            prev->second += it->second;
            freeBlocks_.erase(it);
            it = prev;
        }
    }
    // Shrink the brk when the last gap touches it.
    if (it->first + it->second == brk_) {
        brk_ = it->first;
        freeBlocks_.erase(it);
    }
}

} // namespace nvsim::dnn
