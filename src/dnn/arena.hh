/**
 * @file
 * First-fit arena allocator with coalescing free list.
 *
 * Used twice: by the static Planner to lay out the ngraph-style single
 * training buffer (offsets reused as tensors die — the "fold back" of
 * Figure 5d), and by the AutoTM executor to manage the bounded DRAM
 * budget at run time.
 */

#ifndef NVSIM_DNN_ARENA_HH
#define NVSIM_DNN_ARENA_HH

#include <limits>
#include <map>
#include <optional>

#include "core/types.hh"

namespace nvsim::dnn
{

/** Offset-space allocator (no backing storage). */
class ArenaAllocator
{
  public:
    static constexpr Bytes kUnlimited =
        std::numeric_limits<Bytes>::max();

    /** @param limit hard capacity; kUnlimited lets the arena grow. */
    explicit ArenaAllocator(Bytes limit = kUnlimited);

    /**
     * Allocate @p size bytes first-fit. Returns the offset, or nullopt
     * when no gap fits within the limit.
     */
    std::optional<Addr> alloc(Bytes size);

    /** Return a block. Must match a previous alloc exactly. */
    void free(Addr offset, Bytes size);

    /** Largest offset+size ever handed out. */
    Bytes highWater() const { return highWater_; }

    /** Currently allocated bytes. */
    Bytes inUse() const { return inUse_; }

    Bytes limit() const { return limit_; }

  private:
    Bytes limit_;
    Bytes highWater_ = 0;
    Bytes inUse_ = 0;
    /** Free gaps: offset -> size, non-adjacent (coalesced). */
    std::map<Addr, Bytes> freeBlocks_;
    /** End of the used extent; fresh space starts here. */
    Bytes brk_ = 0;
};

} // namespace nvsim::dnn

#endif // NVSIM_DNN_ARENA_HH
