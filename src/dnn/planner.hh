/**
 * @file
 * Static arena planner, modelling ngraph's memory assignment: before
 * execution a single buffer is allocated for all intermediate tensors,
 * with offsets assigned by liveness (Section V-B: "the ngraph compiler
 * allocates a single buffer for the entire network" and reuses freed
 * regions on the backward pass).
 */

#ifndef NVSIM_DNN_PLANNER_HH
#define NVSIM_DNN_PLANNER_HH

#include <vector>

#include "dnn/graph.hh"
#include "dnn/liveness.hh"

namespace nvsim::dnn
{

/** Where one tensor lives. */
struct TensorPlacement
{
    Addr offset = 0;    //!< byte offset within its region
    Bytes bytes = 0;    //!< scaled, line-rounded size
    bool inArena = false;  //!< arena tensor vs persistent weight region
};

/** Result of planning: offsets for every tensor plus region sizes. */
struct ArenaPlan
{
    Bytes arenaBytes = 0;    //!< scaled single-buffer size
    Bytes weightBytes = 0;   //!< scaled persistent region size
    std::vector<TensorPlacement> placement;  //!< by TensorId
    std::vector<LiveInterval> liveness;      //!< by TensorId

    const TensorPlacement &at(TensorId id) const { return placement[id]; }
};

/**
 * Scale a logical tensor size into simulated bytes: divide by @p scale,
 * round up to whole lines, at least one line.
 */
Bytes scaledTensorBytes(Bytes logical, std::uint64_t scale);

/**
 * Lay out the graph's tensors: activations and gradients share the
 * liveness-managed arena (first-fit, offsets reused after last use);
 * weights and weight gradients get stable offsets in a persistent
 * region.
 */
ArenaPlan planArena(const ComputeGraph &graph, std::uint64_t scale);

} // namespace nvsim::dnn

#endif // NVSIM_DNN_PLANNER_HH
