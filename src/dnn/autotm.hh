/**
 * @file
 * AutoTM-style software-managed tensor movement (Section VII-A.1).
 *
 * AutoTM (Hildebrand et al., ASPLOS'20) formulates tensor placement and
 * movement in a 1LM (app direct) system as an integer linear program
 * over a profiled static schedule. No ILP solver is available offline,
 * so we substitute a profile-guided *sweep-line greedy with Belady
 * eviction*: walk the schedule keeping kernel operands in a bounded
 * DRAM arena; when space runs out, evict the live tensor with the
 * farthest next use (writing it to NVRAM only if it is still live),
 * and drop dead tensors for free.
 *
 * This preserves the two properties the paper attributes AutoTM's win
 * to: (1) data moves in large sequential, nontemporal-store patterns
 * that reach NVRAM's full bandwidth, and (2) semantically dead data is
 * never written back — "AutoTM only generates NVRAM writes during the
 * forward pass ... and NVRAM reads during the backward pass" (Fig 10).
 */

#ifndef NVSIM_DNN_AUTOTM_HH
#define NVSIM_DNN_AUTOTM_HH

#include <vector>

#include "dnn/arena.hh"
#include "dnn/executor.hh"
#include "dnn/planner.hh"
#include "sys/memsys.hh"

namespace nvsim::dnn
{

/** AutoTM run parameters. */
struct AutoTmConfig
{
    /**
     * DRAM bytes (scaled) available for tensors, weights included.
     * Zero means "all of the machine's DRAM pool".
     */
    Bytes dramBudget = 0;
    ExecutorConfig exec;
    /**
     * Move tensors with the DMA copy engines instead of CPU loads +
     * nontemporal stores — the hardware-software co-design direction
     * of Section VII-B. DMA moves overlap with compute and consume no
     * CPU issue slots, at the price of the engines' limited bandwidth.
     */
    bool useDma = false;
};

/** One explicit tensor movement the optimizer scheduled. */
struct MoveEvent
{
    TensorId tensor = 0;
    bool toDram = false;   //!< direction
    Bytes bytes = 0;
    double time = 0;       //!< simulated start time
};

/** Statistics of an AutoTM iteration beyond the base result. */
struct AutoTmStats
{
    std::uint64_t movesToDram = 0;
    std::uint64_t movesToNvram = 0;
    Bytes bytesToDram = 0;
    Bytes bytesToNvram = 0;
    std::uint64_t deadTensorsDropped = 0;  //!< freed without writeback
    Bytes deadBytesDropped = 0;
};

/**
 * Executor for a 1LM system under AutoTM-style management. The
 * MemorySystem must be in MemoryMode::OneLm.
 */
class AutoTmExecutor
{
  public:
    AutoTmExecutor(MemorySystem &sys, const ComputeGraph &graph,
                   const AutoTmConfig &config);

    /** Run one training iteration under software management. */
    IterationResult runIteration();

    const AutoTmStats &stats() const { return stats_; }
    const std::vector<MoveEvent> &moves() const { return moves_; }
    Bytes dramBudget() const { return budget_; }

  private:
    /** Dynamic location of a tensor. */
    struct Location
    {
        bool inDram = false;
        Addr dramOffset = 0;    //!< within the DRAM arena, if inDram
        bool hasNvramSlot = false;
        Addr nvramAddr = 0;     //!< absolute, once spilled
        bool dirtySinceSpill = false;  //!< DRAM copy newer than NVRAM
    };

    /** Next consumer of tensor @p t at or after schedule step @p i. */
    int nextUseAfter(TensorId t, int i) const;

    /** Ensure @p t has bytes in the DRAM arena; move in if needed. */
    bool ensureInDram(TensorId t, int step, bool load_contents);

    /** Evict the in-DRAM live tensor with the farthest next use. */
    bool evictOne(int step, const std::vector<TensorId> &pinned);

    void moveDramToNvram(TensorId t);
    void moveNvramToDram(TensorId t);
    void dropDead(TensorId t);

    Addr dramAddr(TensorId t) const;
    Addr nvramSlot(TensorId t);

    MemorySystem &sys_;
    const ComputeGraph &graph_;
    AutoTmConfig config_;
    std::vector<LiveInterval> liveness_;
    std::vector<Bytes> scaledBytes_;   //!< by tensor id
    /** Consumer steps per tensor (sorted), for Belady decisions. */
    std::vector<std::vector<int>> uses_;

    Region dramRegion_;
    Region nvramRegion_;
    Bytes budget_ = 0;
    ArenaAllocator dramArena_;
    Addr nvramBrk_ = 0;

    std::vector<Location> loc_;
    std::vector<TensorId> residents_;  //!< tensors currently in DRAM

    AutoTmStats stats_;
    std::vector<MoveEvent> moves_;
    int currentStep_ = 0;
};

} // namespace nvsim::dnn

#endif // NVSIM_DNN_AUTOTM_HH
