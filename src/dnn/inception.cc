/**
 * @file
 * Inception v4 builder (Szegedy et al., 2016): stem, 4x Inception-A at
 * 35x35, Reduction-A, 7x Inception-B at 17x17, Reduction-B, 3x
 * Inception-C at 8x8. Branch filter counts follow the published
 * architecture; asymmetric 1x7 / 7x1 convolutions are approximated by
 * single convolutions with equivalent FLOPs and parameter counts (the
 * memory behavior — tensor sizes and liveness — is what matters for
 * the reproduction).
 */

#include <vector>

#include "dnn/networks.hh"

namespace nvsim::dnn
{

namespace
{

TensorId
convBnRelu(NetBuilder &b, TensorId in, std::uint64_t out_c,
           unsigned kernel, unsigned stride = 1,
           const std::string &tag = "conv")
{
    TensorId x = b.conv(in, out_c, kernel, stride, tag);
    x = b.batchNorm(x);
    return b.relu(x);
}

TensorId
inceptionA(NetBuilder &b, TensorId in)
{
    TensorId b0 = convBnRelu(b, in, 96, 1, 1, "ia_b0");
    TensorId b1 = convBnRelu(b, in, 64, 1, 1, "ia_b1a");
    b1 = convBnRelu(b, b1, 96, 3, 1, "ia_b1b");
    TensorId b2 = convBnRelu(b, in, 64, 1, 1, "ia_b2a");
    b2 = convBnRelu(b, b2, 96, 3, 1, "ia_b2b");
    b2 = convBnRelu(b, b2, 96, 3, 1, "ia_b2c");
    TensorId b3 = b.pool(in, 3, 1, "ia_pool");
    b3 = convBnRelu(b, b3, 96, 1, 1, "ia_b3");
    return b.concat({b0, b1, b2, b3});  // 384 channels
}

TensorId
reductionA(NetBuilder &b, TensorId in)
{
    TensorId b0 = convBnRelu(b, in, 384, 3, 2, "ra_b0");
    TensorId b1 = convBnRelu(b, in, 192, 1, 1, "ra_b1a");
    b1 = convBnRelu(b, b1, 224, 3, 1, "ra_b1b");
    b1 = convBnRelu(b, b1, 256, 3, 2, "ra_b1c");
    TensorId b2 = b.pool(in, 3, 2, "ra_pool");
    return b.concat({b0, b1, b2});  // 1024 channels at 17x17
}

TensorId
inceptionB(NetBuilder &b, TensorId in)
{
    TensorId b0 = convBnRelu(b, in, 384, 1, 1, "ib_b0");
    TensorId b1 = convBnRelu(b, in, 192, 1, 1, "ib_b1a");
    b1 = convBnRelu(b, b1, 224, 7, 1, "ib_b1b");  // 1x7+7x1 equivalent
    b1 = convBnRelu(b, b1, 256, 7, 1, "ib_b1c");
    TensorId b2 = convBnRelu(b, in, 192, 1, 1, "ib_b2a");
    b2 = convBnRelu(b, b2, 224, 7, 1, "ib_b2b");
    b2 = convBnRelu(b, b2, 256, 7, 1, "ib_b2c");
    TensorId b3 = b.pool(in, 3, 1, "ib_pool");
    b3 = convBnRelu(b, b3, 128, 1, 1, "ib_b3");
    return b.concat({b0, b1, b2, b3});  // 1024 channels
}

TensorId
reductionB(NetBuilder &b, TensorId in)
{
    TensorId b0 = convBnRelu(b, in, 192, 1, 1, "rb_b0a");
    b0 = convBnRelu(b, b0, 192, 3, 2, "rb_b0b");
    TensorId b1 = convBnRelu(b, in, 256, 1, 1, "rb_b1a");
    b1 = convBnRelu(b, b1, 320, 7, 1, "rb_b1b");
    b1 = convBnRelu(b, b1, 320, 3, 2, "rb_b1c");
    TensorId b2 = b.pool(in, 3, 2, "rb_pool");
    return b.concat({b0, b1, b2});  // 1536 channels at 8x8
}

TensorId
inceptionC(NetBuilder &b, TensorId in)
{
    TensorId b0 = convBnRelu(b, in, 256, 1, 1, "ic_b0");
    TensorId b1 = convBnRelu(b, in, 384, 1, 1, "ic_b1");
    TensorId b1a = convBnRelu(b, b1, 256, 3, 1, "ic_b1a");
    TensorId b1b = convBnRelu(b, b1, 256, 3, 1, "ic_b1b");
    TensorId b2 = convBnRelu(b, in, 384, 1, 1, "ic_b2");
    b2 = convBnRelu(b, b2, 448, 3, 1, "ic_b2a");
    b2 = convBnRelu(b, b2, 512, 3, 1, "ic_b2b");
    TensorId b2a = convBnRelu(b, b2, 256, 3, 1, "ic_b2c");
    TensorId b2b = convBnRelu(b, b2, 256, 3, 1, "ic_b2d");
    TensorId b3 = b.pool(in, 3, 1, "ic_pool");
    b3 = convBnRelu(b, b3, 256, 1, 1, "ic_b3");
    return b.concat({b0, b1a, b1b, b2a, b2b, b3});  // 1536 channels
}

} // namespace

ComputeGraph
buildInceptionV4(std::uint64_t batch, bool training)
{
    NetBuilder b("inceptionv4");
    TensorId x = b.input(Shape{batch, 3, 299, 299});

    // Stem (approximated: the filter-concat forks are kept, the exact
    // 73->71 valid-padding size arithmetic is rounded).
    x = convBnRelu(b, x, 32, 3, 2, "stem1");
    x = convBnRelu(b, x, 32, 3, 1, "stem2");
    x = convBnRelu(b, x, 64, 3, 1, "stem3");
    TensorId p0 = b.pool(x, 3, 2, "stem_pool1");
    TensorId c0 = convBnRelu(b, x, 96, 3, 2, "stem4");
    x = b.concat({p0, c0});  // 160 channels at ~73x73
    TensorId l = convBnRelu(b, x, 64, 1, 1, "stem5a");
    l = convBnRelu(b, l, 96, 3, 1, "stem5b");
    TensorId r = convBnRelu(b, x, 64, 1, 1, "stem6a");
    r = convBnRelu(b, r, 64, 7, 1, "stem6b");
    r = convBnRelu(b, r, 96, 3, 1, "stem6c");
    x = b.concat({l, r});  // 192 channels
    TensorId c1 = convBnRelu(b, x, 192, 3, 2, "stem7");
    TensorId p1 = b.pool(x, 3, 2, "stem_pool2");
    x = b.concat({c1, p1});  // 384 channels at 35x35 (approx)

    for (int i = 0; i < 4; ++i)
        x = inceptionA(b, x);
    x = reductionA(b, x);
    for (int i = 0; i < 7; ++i)
        x = inceptionB(b, x);
    x = reductionB(b, x);
    for (int i = 0; i < 3; ++i)
        x = inceptionC(b, x);

    x = b.globalPool(x);
    x = b.gemm(x, 1000);
    b.loss(x);
    return b.finish(training);
}

} // namespace nvsim::dnn
