#include "dnn/liveness.hh"

#include <algorithm>

namespace nvsim::dnn
{

std::vector<LiveInterval>
computeLiveness(const ComputeGraph &graph)
{
    const auto &ops = graph.schedule();
    std::vector<LiveInterval> live(graph.tensors().size());

    for (std::size_t i = 0; i < ops.size(); ++i) {
        for (TensorId out : ops[i].outputs) {
            if (live[out].def < 0)
                live[out].def = static_cast<int>(i);
            live[out].lastUse =
                std::max(live[out].lastUse, static_cast<int>(i));
        }
        for (TensorId in : ops[i].inputs)
            live[in].lastUse =
                std::max(live[in].lastUse, static_cast<int>(i));
    }

    int last = static_cast<int>(ops.size()) - 1;
    for (const auto &t : graph.tensors()) {
        if (t.kind == TensorKind::Weight ||
            t.kind == TensorKind::WeightGrad) {
            live[t.id].def = -1;
            live[t.id].lastUse = last;
        }
    }
    return live;
}

std::vector<Bytes>
liveBytesPerStep(const ComputeGraph &graph,
                 const std::vector<LiveInterval> &live)
{
    const auto &ops = graph.schedule();
    std::vector<Bytes> steps(ops.size(), 0);
    for (const auto &t : graph.tensors()) {
        if (t.kind == TensorKind::Weight ||
            t.kind == TensorKind::WeightGrad)
            continue;
        const LiveInterval &li = live[t.id];
        if (li.def < 0 && li.lastUse < 0)
            continue;
        int lo = std::max(li.def, 0);
        for (int i = lo; i <= li.lastUse; ++i)
            steps[static_cast<std::size_t>(i)] += t.bytes;
    }
    return steps;
}

Bytes
peakLiveBytes(const ComputeGraph &graph,
              const std::vector<LiveInterval> &live)
{
    Bytes peak = 0;
    for (Bytes b : liveBytesPerStep(graph, live))
        peak = std::max(peak, b);
    return peak;
}

} // namespace nvsim::dnn
