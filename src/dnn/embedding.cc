#include "dnn/embedding.hh"

#include <cmath>

#include "core/logging.hh"
#include "core/rng.hh"

namespace nvsim::dnn
{

const char *
embeddingPlacementName(EmbeddingPlacement placement)
{
    switch (placement) {
      case EmbeddingPlacement::TwoLm:
        return "2LM";
      case EmbeddingPlacement::AppDirect:
        return "app_direct";
      case EmbeddingPlacement::SoftwareCached:
        return "software_cached";
    }
    return "unknown";
}

EmbeddingWorkload::EmbeddingWorkload(MemorySystem &sys,
                                     const EmbeddingConfig &config,
                                     EmbeddingPlacement placement)
    : sys_(sys), config_(config), placement_(placement),
      rngState_(config.seed ? config.seed : 1)
{
    bool two_lm = sys_.config().mode == MemoryMode::TwoLm;
    if (two_lm != (placement == EmbeddingPlacement::TwoLm)) {
        fatal("embedding placement %s incompatible with %s mode",
              embeddingPlacementName(placement),
              memoryModeName(sys_.config().mode));
    }
    if (config_.rowBytes % kLineSize != 0)
        fatal("embedding row size must be a multiple of 64 B");

    if (placement == EmbeddingPlacement::SoftwareCached) {
        hotRows_ = static_cast<std::uint64_t>(
            config_.hotFraction *
            static_cast<double>(config_.rowsPerTable));
    }

    for (unsigned t = 0; t < config_.numTables; ++t) {
        std::string name = strprintf("emb_table_%u", t);
        switch (placement) {
          case EmbeddingPlacement::TwoLm:
            tables_.push_back(
                sys_.allocate(config_.tableBytes(), name));
            break;
          case EmbeddingPlacement::AppDirect:
            tables_.push_back(sys_.allocateIn(
                MemPool::Nvram, config_.tableBytes(), name));
            break;
          case EmbeddingPlacement::SoftwareCached:
            hotHeads_.push_back(sys_.allocateIn(
                MemPool::Dram, hotRows_ * config_.rowBytes,
                name + "_hot"));
            tables_.push_back(sys_.allocateIn(
                MemPool::Nvram,
                (config_.rowsPerTable - hotRows_) * config_.rowBytes,
                name + "_cold"));
            break;
        }
    }
}

Addr
EmbeddingWorkload::rowAddr(unsigned table, std::uint64_t row) const
{
    if (placement_ == EmbeddingPlacement::SoftwareCached) {
        if (row < hotRows_)
            return hotHeads_[table].base + row * config_.rowBytes;
        return tables_[table].base +
               (row - hotRows_) * config_.rowBytes;
    }
    return tables_[table].base + row * config_.rowBytes;
}

EmbeddingResult
EmbeddingWorkload::runBatch()
{
    sys_.setActiveThreads(config_.threads);
    PerfCounters before = sys_.counters();
    double t0 = sys_.now();

    EmbeddingResult result;
    std::uint64_t hot_hits = 0;
    std::uint64_t scale = sys_.config().scale;
    double mlp_seconds_per_sample =
        config_.mlpFlopsPerSample / static_cast<double>(scale) /
        (static_cast<double>(config_.threads) * 50e9);

    for (unsigned s = 0; s < config_.batch; ++s) {
        unsigned thread = s % config_.threads;
        for (unsigned t = 0; t < config_.numTables; ++t) {
            for (unsigned l = 0; l < config_.lookupsPerSample; ++l) {
                // Approximate-Zipf row selection: u^skew piles the
                // probability mass on small row indices.
                double u =
                    static_cast<double>(splitmix64(rngState_) >> 11) *
                    0x1.0p-53;
                auto row = static_cast<std::uint64_t>(
                    std::pow(u, config_.skew) *
                    static_cast<double>(config_.rowsPerTable));
                if (row >= config_.rowsPerTable)
                    row = config_.rowsPerTable - 1;
                hot_hits += row < hotRows_;

                Addr addr = rowAddr(t, row);
                sys_.submit({thread, CpuOp::Load, addr,
                             config_.rowBytes});
                if (config_.updateRows) {
                    sys_.submit({thread, CpuOp::Store, addr,
                                 config_.rowBytes});
                }
                ++result.lookups;
            }
        }
        // Dense MLP compute for the sample.
        sys_.addComputeTime(mlp_seconds_per_sample);
    }
    sys_.quiesce();

    result.seconds = sys_.now() - t0;
    result.counters = sys_.counters().delta(before);
    result.hotHitFraction =
        result.lookups
            ? static_cast<double>(hot_hits) /
                  static_cast<double>(result.lookups)
            : 0;
    return result;
}

} // namespace nvsim::dnn
