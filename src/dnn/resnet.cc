/**
 * @file
 * ResNet 200 builder (He et al.): bottleneck residual blocks arranged
 * 3 / 24 / 36 / 3 over stages of 256 / 512 / 1024 / 2048 channels at
 * 56 / 28 / 14 / 7 spatial resolution.
 */

#include "dnn/networks.hh"

namespace nvsim::dnn
{

namespace
{

/** Bottleneck block: 1x1 down, 3x3, 1x1 up, residual add. */
TensorId
bottleneck(NetBuilder &b, TensorId in, std::uint64_t mid,
           std::uint64_t out, unsigned stride, bool project)
{
    TensorId x = b.batchNorm(in);
    x = b.relu(x);
    x = b.conv(x, mid, 1, 1, "res1x1a");
    x = b.batchNorm(x);
    x = b.relu(x);
    x = b.conv(x, mid, 3, stride, "res3x3");
    x = b.batchNorm(x);
    x = b.relu(x);
    x = b.conv(x, out, 1, 1, "res1x1b");

    TensorId shortcut = in;
    if (project)
        shortcut = b.conv(in, out, 1, stride, "proj");
    return b.add(x, shortcut);
}

} // namespace

ComputeGraph
buildResNet200(std::uint64_t batch, bool training)
{
    const unsigned repeats[4] = {3, 24, 36, 3};
    const std::uint64_t mids[4] = {64, 128, 256, 512};

    NetBuilder b("resnet200");
    TensorId x = b.input(Shape{batch, 3, 224, 224});
    x = b.conv(x, 64, 7, 2, "stem_conv");
    x = b.batchNorm(x);
    x = b.relu(x);
    x = b.pool(x, 3, 2, "stem_pool");

    for (unsigned stage = 0; stage < 4; ++stage) {
        std::uint64_t mid = mids[stage];
        std::uint64_t out = mid * 4;
        for (unsigned r = 0; r < repeats[stage]; ++r) {
            unsigned stride = (stage > 0 && r == 0) ? 2 : 1;
            bool project = r == 0;
            x = bottleneck(b, x, mid, out, stride, project);
        }
    }

    x = b.batchNorm(x);
    x = b.relu(x);
    x = b.globalPool(x);
    x = b.gemm(x, 1000);
    b.loss(x);
    return b.finish(training);
}

} // namespace nvsim::dnn
