#include "dnn/autotm.hh"

#include <algorithm>

#include "core/logging.hh"
#include "obs/observer.hh"

namespace nvsim::dnn
{

AutoTmExecutor::AutoTmExecutor(MemorySystem &sys,
                               const ComputeGraph &graph,
                               const AutoTmConfig &config)
    : sys_(sys), graph_(graph), config_(config),
      liveness_(computeLiveness(graph)),
      dramArena_(ArenaAllocator::kUnlimited)
{
    if (sys_.config().mode != MemoryMode::OneLm)
        fatal("AutoTM requires a 1LM (app direct) memory system");

    std::uint64_t scale = sys_.config().scale;
    scaledBytes_.reserve(graph_.tensors().size());
    for (const auto &t : graph_.tensors())
        scaledBytes_.push_back(scaledTensorBytes(t.bytes, scale));

    uses_.assign(graph_.tensors().size(), {});
    const auto &ops = graph_.schedule();
    for (std::size_t i = 0; i < ops.size(); ++i) {
        for (TensorId t : ops[i].inputs)
            uses_[t].push_back(static_cast<int>(i));
    }

    budget_ = config_.dramBudget ? config_.dramBudget
                                 : sys_.poolFree(MemPool::Dram);
    if (budget_ > sys_.poolFree(MemPool::Dram))
        fatal("AutoTM DRAM budget exceeds the machine's DRAM pool");
    dramRegion_ =
        sys_.allocateIn(MemPool::Dram, budget_, graph_.name() + "_dram");
    dramArena_ = ArenaAllocator(budget_);

    // NVRAM spill space: worst case, one slot per tensor.
    Bytes nvram_need = 0;
    for (Bytes b : scaledBytes_)
        nvram_need += b;
    nvramRegion_ = sys_.allocateIn(MemPool::Nvram, nvram_need,
                                   graph_.name() + "_nvram");

    loc_.assign(graph_.tensors().size(), Location{});

    // Weights (and their gradients) are pinned in DRAM for the whole
    // run; AutoTM always placed parameters in DRAM.
    for (const auto &t : graph_.tensors()) {
        if (t.kind == TensorKind::Weight ||
            t.kind == TensorKind::WeightGrad) {
            auto off = dramArena_.alloc(scaledBytes_[t.id]);
            if (!off)
                fatal("AutoTM DRAM budget too small for the weights of "
                      "%s", graph_.name().c_str());
            loc_[t.id].inDram = true;
            loc_[t.id].dramOffset = *off;
        }
    }
}

Addr
AutoTmExecutor::dramAddr(TensorId t) const
{
    return dramRegion_.base + loc_[t].dramOffset;
}

Addr
AutoTmExecutor::nvramSlot(TensorId t)
{
    Location &l = loc_[t];
    if (!l.hasNvramSlot) {
        l.nvramAddr = nvramRegion_.base + nvramBrk_;
        nvramBrk_ += scaledBytes_[t];
        l.hasNvramSlot = true;
    }
    return l.nvramAddr;
}

int
AutoTmExecutor::nextUseAfter(TensorId t, int i) const
{
    const auto &u = uses_[t];
    auto it = std::lower_bound(u.begin(), u.end(), i);
    return it == u.end() ? -1 : *it;
}

void
AutoTmExecutor::moveDramToNvram(TensorId t)
{
    Bytes bytes = scaledBytes_[t];
    Addr src = dramAddr(t);
    Addr dst = nvramSlot(t);
    if (config_.useDma) {
        sys_.dmaCopy(dst, src, bytes);
    } else {
        // Large sequential copy: loads from DRAM, nontemporal stores
        // to NVRAM — the bandwidth-friendly pattern of Section III.
        Executor::streamRange(sys_, src, bytes, CpuOp::Load,
                              config_.exec.threads,
                              config_.exec.chunkBytes, 0);
        Executor::streamRange(sys_, dst, bytes, CpuOp::NtStore,
                              config_.exec.threads,
                              config_.exec.chunkBytes, 0);
    }
    moves_.push_back({t, false, bytes, sys_.now()});
    ++stats_.movesToNvram;
    stats_.bytesToNvram += bytes;
    loc_[t].dirtySinceSpill = false;
}

void
AutoTmExecutor::moveNvramToDram(TensorId t)
{
    Bytes bytes = scaledBytes_[t];
    Addr src = nvramSlot(t);
    Addr dst = dramAddr(t);
    if (config_.useDma) {
        sys_.dmaCopy(dst, src, bytes);
    } else {
        Executor::streamRange(sys_, src, bytes, CpuOp::Load,
                              config_.exec.threads,
                              config_.exec.chunkBytes, 0);
        Executor::streamRange(sys_, dst, bytes, CpuOp::NtStore,
                              config_.exec.threads,
                              config_.exec.chunkBytes, 0);
    }
    moves_.push_back({t, true, bytes, sys_.now()});
    ++stats_.movesToDram;
    stats_.bytesToDram += bytes;
}

void
AutoTmExecutor::dropDead(TensorId t)
{
    Location &l = loc_[t];
    if (l.inDram) {
        dramArena_.free(l.dramOffset, scaledBytes_[t]);
        l.inDram = false;
        residents_.erase(
            std::remove(residents_.begin(), residents_.end(), t),
            residents_.end());
    }
    ++stats_.deadTensorsDropped;
    stats_.deadBytesDropped += scaledBytes_[t];
}

bool
AutoTmExecutor::evictOne(int step, const std::vector<TensorId> &pinned)
{
    TensorId victim = kNoTensor;
    int victim_next = -2;
    for (TensorId t : residents_) {
        if (std::find(pinned.begin(), pinned.end(), t) != pinned.end())
            continue;
        int nu = nextUseAfter(t, step);
        if (nu < 0) {
            // Dead or never-again-used: best possible victim.
            victim = t;
            victim_next = -1;
            break;
        }
        if (nu > victim_next) {
            victim = t;
            victim_next = nu;
        }
    }
    if (victim == kNoTensor)
        return false;

    Location &l = loc_[victim];
    bool live = nextUseAfter(victim, step) >= 0;
    if (live && l.dirtySinceSpill) {
        // Live data must survive: write it to its NVRAM slot.
        moveDramToNvram(victim);
    } else if (!live) {
        dropDead(victim);
        return true;
    }
    dramArena_.free(l.dramOffset, scaledBytes_[victim]);
    l.inDram = false;
    residents_.erase(
        std::remove(residents_.begin(), residents_.end(), victim),
        residents_.end());
    return true;
}

bool
AutoTmExecutor::ensureInDram(TensorId t, int step, bool load_contents)
{
    Location &l = loc_[t];
    if (l.inDram)
        return true;
    Bytes bytes = scaledBytes_[t];
    if (bytes > budget_ / 2)
        return false;  // oversized: access in place in NVRAM

    std::vector<TensorId> pinned;  // avoid evicting current operands
    for (;;) {
        auto off = dramArena_.alloc(bytes);
        if (off) {
            l.inDram = true;
            l.dramOffset = *off;
            residents_.push_back(t);
            // Only fetch real spilled data; tensors that never lived
            // in NVRAM (graph inputs, fresh gradients) just
            // materialize.
            if (load_contents && l.hasNvramSlot)
                moveNvramToDram(t);
            return true;
        }
        if (!evictOne(step, pinned))
            return false;
    }
}

IterationResult
AutoTmExecutor::runIteration()
{
    IterationResult result;
    sys_.setActiveThreads(config_.exec.threads);
    PerfCounters before = sys_.counters();
    double t0 = sys_.now();
    std::uint64_t scale = sys_.config().scale;

    obs::ContextScope graphCtx(sys_.observer(),
                               graph_.name() + "/autotm");
    const auto &ops = graph_.schedule();
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const Op &op = ops[i];
        int step = static_cast<int>(i);
        currentStep_ = step;
        obs::ContextScope opCtx(sys_.observer(), op.name);

        KernelEvent ev;
        ev.op = op.id;
        ev.kind = op.kind;
        ev.name = op.name;

        // Movement phase: pull inputs into DRAM, make room for outputs.
        for (TensorId t : op.inputs) {
            const Tensor &tt = graph_.tensor(t);
            if (tt.kind == TensorKind::Weight ||
                tt.kind == TensorKind::WeightGrad)
                continue;
            ensureInDram(t, step, /*load_contents=*/true);
        }
        for (TensorId t : op.outputs) {
            const Tensor &tt = graph_.tensor(t);
            if (tt.kind == TensorKind::Weight ||
                tt.kind == TensorKind::WeightGrad)
                continue;
            // Outputs are written before read: no content load needed.
            if (ensureInDram(t, step, /*load_contents=*/false))
                loc_[t].dirtySinceSpill = true;
        }

        ev.start = sys_.now();
        ev.flops = op.flops / static_cast<double>(scale);

        Bytes bytes = 0;
        for (TensorId t : op.inputs)
            bytes += scaledBytes_[t];
        for (TensorId t : op.outputs)
            bytes += scaledBytes_[t];
        ev.bytesTouched = bytes;

        double compute_seconds =
            ev.flops / (static_cast<double>(config_.exec.threads) *
                        config_.exec.flopsPerCore);
        double share =
            bytes ? compute_seconds / static_cast<double>(bytes) : 0;

        auto addr = [&](TensorId t) {
            return loc_[t].inDram ? dramAddr(t) : nvramSlot(t);
        };
        for (TensorId t : op.inputs) {
            Executor::streamRange(sys_, addr(t), scaledBytes_[t],
                                  CpuOp::Load, config_.exec.threads,
                                  config_.exec.chunkBytes, share);
        }
        for (TensorId t : op.outputs) {
            if (loc_[t].inDram)
                loc_[t].dirtySinceSpill = true;
            Executor::streamRange(sys_, addr(t), scaledBytes_[t],
                                  CpuOp::Store, config_.exec.threads,
                                  config_.exec.chunkBytes, share);
        }
        if (bytes == 0 && compute_seconds > 0)
            sys_.addComputeTime(compute_seconds);

        sys_.advanceEpoch();
        ev.end = sys_.now();

        double inst =
            ev.flops * config_.exec.instPerFlop +
            static_cast<double>(bytes) * config_.exec.instPerByte;
        result.totalInstructions += inst;
        double dt = ev.end - ev.start;
        if (dt > 0)
            sys_.trace().record("mips", ev.end, inst / dt / 1e6);
        result.kernels.push_back(std::move(ev));

        // Drop tensors that died at this step: their DRAM space is
        // reclaimed with no NVRAM writeback — the dirty-dead data the
        // 2LM cache cannot avoid writing back.
        for (TensorId t = 0; t < loc_.size(); ++t) {
            const Tensor &tt = graph_.tensor(t);
            if (tt.kind == TensorKind::Weight ||
                tt.kind == TensorKind::WeightGrad)
                continue;
            if (liveness_[t].lastUse == step && loc_[t].inDram)
                dropDead(t);
        }
    }

    sys_.quiesce();
    result.seconds = sys_.now() - t0;
    result.counters = sys_.counters().delta(before);
    return result;
}

} // namespace nvsim::dnn
