#include "dnn/executor.hh"

#include "core/logging.hh"
#include "obs/observer.hh"

namespace nvsim::dnn
{

Executor::Executor(MemorySystem &sys, const ComputeGraph &graph,
                   const ExecutorConfig &config)
    : sys_(sys), graph_(graph), config_(config),
      plan_(planArena(graph, sys.config().scale))
{
    arena_ = sys_.allocate(plan_.arenaBytes, graph_.name() + "_arena");
    weightsRegion_ =
        sys_.allocate(plan_.weightBytes, graph_.name() + "_weights");
}

Addr
Executor::tensorAddr(TensorId id) const
{
    const TensorPlacement &p = plan_.at(id);
    return (p.inArena ? arena_.base : weightsRegion_.base) + p.offset;
}

void
Executor::streamRange(MemorySystem &sys, Addr base, Bytes bytes,
                      CpuOp op, unsigned threads, Bytes chunk,
                      double compute_share_per_byte)
{
    if (bytes == 0)
        return;
    // Chunks round-robin across threads, approximating a parallel-for
    // over the tensor.
    Bytes done = 0;
    unsigned thread = 0;
    while (done < bytes) {
        Bytes n = std::min(chunk, bytes - done);
        for (Bytes off = 0; off < n; off += kLineSize)
            sys.touchLine(thread, op, lineBase(base + done + off));
        if (compute_share_per_byte > 0)
            sys.addComputeTime(compute_share_per_byte *
                               static_cast<double>(n));
        done += n;
        thread = (thread + 1) % threads;
    }
}

IterationResult
Executor::runIteration()
{
    IterationResult result;
    sys_.setActiveThreads(config_.threads);
    PerfCounters before = sys_.counters();
    double t0 = sys_.now();
    std::uint64_t scale = sys_.config().scale;
    obs::ContextScope graphCtx(sys_.observer(), graph_.name());

    for (const Op &op : graph_.schedule()) {
        obs::ContextScope opCtx(sys_.observer(), op.name);
        KernelEvent ev;
        ev.op = op.id;
        ev.kind = op.kind;
        ev.name = op.name;
        ev.start = sys_.now();
        ev.flops = op.flops / static_cast<double>(scale);

        Bytes bytes = 0;
        for (TensorId t : op.inputs)
            bytes += plan_.at(t).bytes;
        for (TensorId t : op.outputs)
            bytes += plan_.at(t).bytes;
        ev.bytesTouched = bytes;

        double compute_seconds =
            ev.flops /
            (static_cast<double>(config_.threads) * config_.flopsPerCore);
        double share = bytes ? compute_seconds /
                                   static_cast<double>(bytes)
                             : 0;

        for (TensorId t : op.inputs) {
            streamRange(sys_, tensorAddr(t), plan_.at(t).bytes,
                        CpuOp::Load, config_.threads, config_.chunkBytes,
                        share);
        }
        for (TensorId t : op.outputs) {
            streamRange(sys_, tensorAddr(t), plan_.at(t).bytes,
                        CpuOp::Store, config_.threads, config_.chunkBytes,
                        share);
        }
        if (bytes == 0 && compute_seconds > 0)
            sys_.addComputeTime(compute_seconds);

        // Close the kernel's timing epoch so events don't bleed.
        sys_.advanceEpoch();
        ev.end = sys_.now();
        if (obs::Observer *o = sys_.observer())
            o->kernelSpan(op.name, ev.start, ev.end);

        double inst = ev.flops * config_.instPerFlop +
                      static_cast<double>(bytes) * config_.instPerByte;
        result.totalInstructions += inst;
        double dt = ev.end - ev.start;
        if (dt > 0)
            sys_.trace().record("mips", ev.end, inst / dt / 1e6);

        result.kernels.push_back(std::move(ev));
    }

    sys_.quiesce();
    result.seconds = sys_.now() - t0;
    result.counters = sys_.counters().delta(before);
    return result;
}

} // namespace nvsim::dnn
