/**
 * @file
 * Training executor: runs a ComputeGraph iteration against the
 * simulated memory system the way the ngraph runtime runs a compiled
 * network (Section V of the paper).
 *
 * Every kernel streams its input tensors (loads) and output tensors
 * (standard stores, i.e. RFO + eventual writeback) through the memory
 * hierarchy, overlapped with the kernel's compute time. Tensor
 * addresses come from the static arena plan, so the 2LM DRAM cache sees
 * the exact reuse pattern of Figure 5d — including the dirty-but-dead
 * regions that cause useless writebacks.
 */

#ifndef NVSIM_DNN_EXECUTOR_HH
#define NVSIM_DNN_EXECUTOR_HH

#include <vector>

#include "dnn/planner.hh"
#include "sys/memsys.hh"

namespace nvsim::dnn
{

/** Execution model parameters. */
struct ExecutorConfig
{
    unsigned threads = 24;        //!< worker threads (cores used)
    double flopsPerCore = 50e9;   //!< sustained fp32 FLOP/s per core
    /** Interleave compute and memory in chunks of this many bytes. */
    Bytes chunkBytes = 256 * kKiB;
    /** Estimated instructions per FLOP (for the MIPS trace). */
    double instPerFlop = 0.3;
    /** Estimated instructions per byte moved. */
    double instPerByte = 0.12;
};

/** Timestamped kernel execution record (Figure 6). */
struct KernelEvent
{
    OpId op = 0;
    OpKind kind = OpKind::Conv;
    std::string name;
    double start = 0;   //!< simulated seconds
    double end = 0;
    Bytes bytesTouched = 0;
    double flops = 0;
};

/** Result of one training iteration. */
struct IterationResult
{
    double seconds = 0;
    PerfCounters counters;
    std::vector<KernelEvent> kernels;
    double totalInstructions = 0;

    /** Mean retired-instruction rate (Figure 5a proxy). */
    double
    mips() const
    {
        return seconds > 0 ? totalInstructions / seconds / 1e6 : 0;
    }
};

/** ngraph-style executor over a static arena (2LM or flat 1LM). */
class Executor
{
  public:
    /**
     * Plans the arena and allocates it (plus the persistent weight
     * region) from @p sys.
     */
    Executor(MemorySystem &sys, const ComputeGraph &graph,
             const ExecutorConfig &config);

    /** Run one full training iteration. */
    IterationResult runIteration();

    const ArenaPlan &plan() const { return plan_; }
    const Region &arena() const { return arena_; }
    const Region &weights() const { return weightsRegion_; }

    /** Simulated address of a tensor. */
    Addr tensorAddr(TensorId id) const;

    /**
     * Stream one tensor-sized range through the memory system with the
     * kernel's compute share interleaved. Shared with AutoTmExecutor.
     */
    static void streamRange(MemorySystem &sys, Addr base, Bytes bytes,
                            CpuOp op, unsigned threads, Bytes chunk,
                            double compute_share_per_byte);

  private:
    MemorySystem &sys_;
    const ComputeGraph &graph_;
    ExecutorConfig config_;
    ArenaPlan plan_;
    Region arena_;
    Region weightsRegion_;
};

} // namespace nvsim::dnn

#endif // NVSIM_DNN_EXECUTOR_HH
