/**
 * @file
 * Builders for the paper's three training workloads — DenseNet 264,
 * ResNet 200 and Inception v4 — plus a tiny CNN used in tests. All are
 * constructed at a configurable batch size; the paper scales batch
 * sizes until footprints exceed 650 GB (DenseNet 264 at batch 3072 is
 * ~688 GB).
 */

#ifndef NVSIM_DNN_NETWORKS_HH
#define NVSIM_DNN_NETWORKS_HH

#include <cstdint>
#include <map>

#include "dnn/graph.hh"

namespace nvsim::dnn
{

/** NCHW tensor shape. */
struct Shape
{
    std::uint64_t n = 1, c = 1, h = 1, w = 1;

    std::uint64_t elems() const { return n * c * h * w; }
    Bytes bytes() const { return elems() * 4; }  //!< fp32
};

/**
 * Convenience layer-emitter over a ComputeGraph. Tracks the shape of
 * every activation so layers can be chained without re-deriving sizes.
 */
class NetBuilder
{
  public:
    explicit NetBuilder(const std::string &name) : graph_(name) {}

    /** The network input tensor. */
    TensorId input(const Shape &shape);

    /** 2-d convolution + implicit bias. */
    TensorId conv(TensorId in, std::uint64_t out_c, unsigned kernel,
                  unsigned stride = 1, const std::string &tag = "conv");

    TensorId batchNorm(TensorId in);
    TensorId relu(TensorId in);
    TensorId pool(TensorId in, unsigned kernel, unsigned stride,
                  const std::string &tag = "pool");
    /** Global average pool to 1x1. */
    TensorId globalPool(TensorId in);
    TensorId concat(const std::vector<TensorId> &ins);
    TensorId add(TensorId a, TensorId b);
    TensorId gemm(TensorId in, std::uint64_t out_features);
    TensorId loss(TensorId in);

    const Shape &shape(TensorId id) const { return shapes_.at(id); }

    /** Finish: validate and optionally append the backward pass. */
    ComputeGraph finish(bool training = true);

  private:
    TensorId newActivation(const std::string &tag, const Shape &shape);

    ComputeGraph graph_;
    std::map<TensorId, Shape> shapes_;
    unsigned counter_ = 0;
};

/** DenseNet 264 (blocks 6/12/64/48, growth 32, bottleneck+compression). */
ComputeGraph buildDenseNet264(std::uint64_t batch, bool training = true);

/** ResNet 200 (bottleneck blocks 3/24/36/3). */
ComputeGraph buildResNet200(std::uint64_t batch, bool training = true);

/** Inception v4 (stem, 4xA, reduction, 7xB, reduction, 3xC). */
ComputeGraph buildInceptionV4(std::uint64_t batch, bool training = true);

/** VGG-19 (the paper's reference [47]); a conv/FC-only contrast. */
ComputeGraph buildVgg19(std::uint64_t batch, bool training = true);

/** A 6-layer CNN for unit tests. */
ComputeGraph buildTinyCnn(std::uint64_t batch, bool training = true);

/** Look up a builder by name ("densenet264", "resnet200", ...). */
ComputeGraph buildNetwork(const std::string &name, std::uint64_t batch,
                          bool training = true);

} // namespace nvsim::dnn

#endif // NVSIM_DNN_NETWORKS_HH
