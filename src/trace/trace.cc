#include "trace/trace.hh"

#include <cstring>

#include "core/logging.hh"

namespace nvsim::trace
{

namespace
{

constexpr char kMagic[8] = {'n', 'v', 's', 'i', 'm', 't', 'r', '1'};

/** On-disk record layout (packed manually for portability). */
constexpr std::size_t kRecordBytes = 1 + 1 + 2 + 8 + 4 + 8;

void
encode(const TraceRecord &rec, char *buf)
{
    buf[0] = static_cast<char>(rec.kind);
    buf[1] = static_cast<char>(rec.op);
    std::memcpy(buf + 2, &rec.thread, 2);
    std::memcpy(buf + 4, &rec.addr, 8);
    std::memcpy(buf + 12, &rec.size, 4);
    std::memcpy(buf + 16, &rec.compute, 8);
}

void
decode(const char *buf, TraceRecord &rec)
{
    rec.kind = static_cast<TraceRecord::Kind>(buf[0]);
    rec.op = static_cast<CpuOp>(buf[1]);
    std::memcpy(&rec.thread, buf + 2, 2);
    std::memcpy(&rec.addr, buf + 4, 8);
    std::memcpy(&rec.size, buf + 12, 4);
    std::memcpy(&rec.compute, buf + 16, 8);
}

} // namespace

TraceWriter::TraceWriter(const std::string &path)
    : out_(path, std::ios::binary), path_(path)
{
    if (!out_)
        fatal("cannot open trace file '%s' for writing", path.c_str());
    out_.write(kMagic, sizeof(kMagic));
    std::uint64_t placeholder = 0;
    out_.write(reinterpret_cast<const char *>(&placeholder), 8);
}

TraceWriter::~TraceWriter()
{
    if (!closed_)
        close();
}

void
TraceWriter::put(const TraceRecord &rec)
{
    nvsim_assert(!closed_);
    char buf[kRecordBytes];
    encode(rec, buf);
    out_.write(buf, sizeof(buf));
    ++count_;
}

void
TraceWriter::access(unsigned thread, CpuOp op, Addr addr, Bytes size)
{
    TraceRecord rec;
    rec.kind = TraceRecord::Kind::Access;
    rec.op = op;
    rec.thread = static_cast<std::uint16_t>(thread);
    rec.addr = addr;
    rec.size = static_cast<std::uint32_t>(size);
    put(rec);
}

void
TraceWriter::epochMarker()
{
    TraceRecord rec;
    rec.kind = TraceRecord::Kind::EpochMarker;
    put(rec);
}

void
TraceWriter::computeTime(double seconds)
{
    TraceRecord rec;
    rec.kind = TraceRecord::Kind::ComputeTime;
    rec.compute = seconds;
    put(rec);
}

void
TraceWriter::close()
{
    if (closed_)
        return;
    closed_ = true;
    out_.seekp(sizeof(kMagic));
    out_.write(reinterpret_cast<const char *>(&count_), 8);
    out_.close();
}

TraceReader::TraceReader(const std::string &path)
    : in_(path, std::ios::binary)
{
    if (!in_)
        fatal("cannot open trace file '%s'", path.c_str());

    // Header: magic, then the record count close() backpatches. Check
    // each piece separately so the error says what actually happened —
    // wrong file type, a file cut off mid-header, or a writer that
    // never ran close().
    char magic[sizeof(kMagic)];
    in_.read(magic, sizeof(magic));
    if (in_.gcount() != sizeof(magic) ||
        std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
        fatal("'%s' is not an nvsim trace", path.c_str());
    in_.read(reinterpret_cast<char *>(&count_), 8);
    if (in_.gcount() != 8)
        fatal("trace '%s' truncated inside the header", path.c_str());

    // The payload must hold exactly the promised records; anything
    // else means a truncated copy or an unfinalized/corrupt writer.
    std::streamoff payload_start = in_.tellg();
    in_.seekg(0, std::ios::end);
    std::streamoff payload =
        static_cast<std::streamoff>(in_.tellg()) - payload_start;
    in_.seekg(payload_start);
    std::uint64_t held =
        static_cast<std::uint64_t>(payload) / kRecordBytes;
    if (held < count_ ||
        static_cast<std::uint64_t>(payload) != count_ * kRecordBytes) {
        fatal("trace '%s' promises %llu records but holds %llu "
              "(%lld payload bytes); truncated or not close()d",
              path.c_str(), static_cast<unsigned long long>(count_),
              static_cast<unsigned long long>(held),
              static_cast<long long>(payload));
    }
}

bool
TraceReader::next(TraceRecord &rec)
{
    if (consumed_ >= count_)
        return false;
    char buf[kRecordBytes];
    in_.read(buf, sizeof(buf));
    if (in_.gcount() != static_cast<std::streamsize>(sizeof(buf)))
        fatal("trace truncated after %llu of %llu records",
              static_cast<unsigned long long>(consumed_),
              static_cast<unsigned long long>(count_));
    decode(buf, rec);
    if (rec.kind != TraceRecord::Kind::Access &&
        rec.kind != TraceRecord::Kind::EpochMarker &&
        rec.kind != TraceRecord::Kind::ComputeTime) {
        fatal("corrupt trace record %llu: unknown kind %u",
              static_cast<unsigned long long>(consumed_),
              static_cast<unsigned>(rec.kind));
    }
    if (rec.kind == TraceRecord::Kind::Access &&
        rec.op != CpuOp::Load && rec.op != CpuOp::Store &&
        rec.op != CpuOp::NtStore) {
        fatal("corrupt trace record %llu: unknown op %u",
              static_cast<unsigned long long>(consumed_),
              static_cast<unsigned>(rec.op));
    }
    ++consumed_;
    return true;
}

std::uint64_t
replay(MemorySystem &sys, const std::string &path)
{
    TraceReader reader(path);
    TraceRecord rec;
    std::uint64_t n = 0;
    while (reader.next(rec)) {
        switch (rec.kind) {
          case TraceRecord::Kind::Access:
            sys.submit({rec.thread, rec.op, rec.addr, rec.size});
            break;
          case TraceRecord::Kind::EpochMarker:
            sys.advanceEpoch();
            break;
          case TraceRecord::Kind::ComputeTime:
            sys.addComputeTime(rec.compute);
            break;
        }
        ++n;
    }
    return n;
}

} // namespace nvsim::trace
