/**
 * @file
 * Memory-access trace capture and replay.
 *
 * Workloads can be recorded once and replayed against differently
 * configured machines (other DDO policies, associativities, modes),
 * which turns any application run into a reusable benchmark input —
 * the same decoupling the paper gets from its performance-counter
 * methodology. The format is a small binary: a header followed by
 * fixed-size records; epoch markers preserve explicit timing
 * boundaries (kernel edges) across replay.
 */

#ifndef NVSIM_TRACE_TRACE_HH
#define NVSIM_TRACE_TRACE_HH

#include <cstdint>
#include <fstream>
#include <string>

#include "sys/memsys.hh"

namespace nvsim::trace
{

/** One recorded event. */
struct TraceRecord
{
    enum class Kind : std::uint8_t {
        Access,       //!< a CPU access
        EpochMarker,  //!< an explicit advanceEpoch()
        ComputeTime,  //!< addComputeTime(seconds via bits)
    };

    Kind kind = Kind::Access;
    CpuOp op = CpuOp::Load;
    std::uint16_t thread = 0;
    Addr addr = 0;
    std::uint32_t size = 0;
    double compute = 0;  //!< seconds, Kind::ComputeTime only
};

/** Streaming binary trace writer. */
class TraceWriter
{
  public:
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    void access(unsigned thread, CpuOp op, Addr addr, Bytes size);
    void epochMarker();
    void computeTime(double seconds);

    std::uint64_t records() const { return count_; }

    /** Flush and finalize the header. */
    void close();

  private:
    void put(const TraceRecord &rec);

    std::ofstream out_;
    std::string path_;
    std::uint64_t count_ = 0;
    bool closed_ = false;
};

/** Streaming binary trace reader. */
class TraceReader
{
  public:
    explicit TraceReader(const std::string &path);

    /** Read the next record; false at end of trace. */
    bool next(TraceRecord &rec);

    std::uint64_t records() const { return count_; }

  private:
    std::ifstream in_;
    std::uint64_t count_ = 0;
    std::uint64_t consumed_ = 0;
};

/**
 * A pass-through facade that forwards the MemorySystem workload API
 * while recording every call. Workload code templated/written against
 * the same method names runs unmodified.
 */
class RecordingSystem
{
  public:
    RecordingSystem(MemorySystem &sys, const std::string &path)
        : sys_(sys), writer_(path)
    {
    }

    void
    submit(const AccessBatch &batch)
    {
        writer_.access(batch.thread, batch.op, batch.addr, batch.size);
        sys_.submit(batch);
    }

    void
    access(unsigned thread, CpuOp op, Addr addr, Bytes size)
    {
        submit({thread, op, addr, size});
    }

    void
    touchLine(unsigned thread, CpuOp op, Addr line_addr)
    {
        writer_.access(thread, op, line_addr, kLineSize);
        sys_.touchLine(thread, op, line_addr);
    }

    void
    advanceEpoch()
    {
        writer_.epochMarker();
        sys_.advanceEpoch();
    }

    void
    addComputeTime(double seconds)
    {
        writer_.computeTime(seconds);
        sys_.addComputeTime(seconds);
    }

    MemorySystem &system() { return sys_; }
    TraceWriter &writer() { return writer_; }

  private:
    MemorySystem &sys_;
    TraceWriter writer_;
};

/**
 * Replay a trace against a machine. Returns the number of records
 * replayed. The caller controls setActiveThreads and quiesce().
 */
std::uint64_t replay(MemorySystem &sys, const std::string &path);

} // namespace nvsim::trace

#endif // NVSIM_TRACE_TRACE_HH
