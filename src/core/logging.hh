/**
 * @file
 * Error / status reporting in the gem5 tradition.
 *
 * panic()  — an internal invariant was violated; this is a simulator bug.
 * fatal()  — the user asked for something unsupported (bad configuration).
 * warn()   — something is modelled approximately; results may be affected.
 * inform() — neutral status for the console.
 */

#ifndef NVSIM_CORE_LOGGING_HH
#define NVSIM_CORE_LOGGING_HH

#include <cstdarg>
#include <string>

namespace nvsim
{

/** Abort with a message: internal invariant violation (simulator bug). */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit(1) with a message: unusable user configuration. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Non-fatal warning to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Status message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace nvsim

#define nvsim_assert(cond, ...)                                           \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::nvsim::panic("assertion '%s' failed at %s:%d", #cond,       \
                           __FILE__, __LINE__);                           \
        }                                                                 \
    } while (0)

#endif // NVSIM_CORE_LOGGING_HH
