#include "core/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

namespace nvsim
{

namespace
{

std::string
vstrprintf(const char *fmt, va_list ap)
{
    va_list ap_copy;
    va_copy(ap_copy, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap_copy);
    va_end(ap_copy);
    if (n < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(n));
}

void
emit(const char *prefix, const char *fmt, va_list ap)
{
    // Parallel sweep tasks may warn/inform concurrently; one lock per
    // message keeps lines whole without ordering them.
    static std::mutex mutex;
    std::string msg = vstrprintf(fmt, ap);
    std::lock_guard<std::mutex> lock(mutex);
    std::fprintf(stderr, "%s: %s\n", prefix, msg.c_str());
}

} // namespace

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit("info", fmt, ap);
    va_end(ap);
}

std::string
strprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vstrprintf(fmt, ap);
    va_end(ap);
    return s;
}

} // namespace nvsim
