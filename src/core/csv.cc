#include "core/csv.hh"

#include "core/logging.hh"
#include "core/timeseries.hh"

namespace nvsim
{

CsvWriter::CsvWriter(const std::string &path) : out_(path)
{
    if (!out_)
        fatal("cannot open CSV output file '%s'", path.c_str());
}

std::string
CsvWriter::escape(const std::string &field)
{
    if (field.find_first_of(",\"\n") == std::string::npos)
        return field;
    std::string quoted = "\"";
    for (char c : field) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

void
CsvWriter::row(const std::vector<std::string> &fields)
{
    for (size_t i = 0; i < fields.size(); ++i) {
        if (i)
            out_ << ',';
        out_ << escape(fields[i]);
    }
    out_ << '\n';
}

void
CsvWriter::row(const std::vector<double> &fields)
{
    for (size_t i = 0; i < fields.size(); ++i) {
        if (i)
            out_ << ',';
        out_ << fields[i];
    }
    out_ << '\n';
}

void
writeTimeSeriesCsv(const std::string &path, const TimeSeries &series)
{
    CsvWriter csv(path);
    csv.row(std::vector<std::string>{"time", "channel", "value"});
    for (const auto &name : series.names()) {
        for (const auto &s : series.channel(name)) {
            csv.row(std::vector<std::string>{
                std::to_string(s.time), name, std::to_string(s.value)});
        }
    }
}

} // namespace nvsim
