#include "core/csv.hh"

#include "core/logging.hh"
#include "core/timeseries.hh"

namespace nvsim
{

CsvWriter::CsvWriter(const std::string &path) : out_(path), path_(path)
{
    if (!out_)
        fatal("cannot open CSV output file '%s'", path.c_str());
}

CsvWriter::~CsvWriter()
{
    // A destructor must not exit the process; close() explicitly from
    // benches to turn a failed flush into a nonzero exit.
    if (closed_)
        return;
    out_.flush();
    if (!out_)
        warn("CSV output file '%s' failed on final flush; file is "
             "truncated or missing data",
             path_.c_str());
}

std::string
CsvWriter::escape(const std::string &field)
{
    if (field.find_first_of(",\"\n") == std::string::npos)
        return field;
    std::string quoted = "\"";
    for (char c : field) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

void
CsvWriter::check()
{
    if (!out_)
        fatal("write to CSV output file '%s' failed (disk full or "
              "unwritable path?)",
              path_.c_str());
}

void
CsvWriter::row(const std::vector<std::string> &fields)
{
    for (size_t i = 0; i < fields.size(); ++i) {
        if (i)
            out_ << ',';
        out_ << escape(fields[i]);
    }
    out_ << '\n';
    check();
}

void
CsvWriter::row(const std::vector<double> &fields)
{
    for (size_t i = 0; i < fields.size(); ++i) {
        if (i)
            out_ << ',';
        out_ << fields[i];
    }
    out_ << '\n';
    check();
}

void
CsvWriter::close()
{
    if (closed_)
        return;
    out_.flush();
    check();
    out_.close();
    check();
    closed_ = true;
}

void
writeTimeSeriesCsv(const std::string &path, const TimeSeries &series)
{
    CsvWriter csv(path);
    csv.row(std::vector<std::string>{"time", "channel", "value"});
    for (const auto &name : series.names()) {
        for (const auto &s : series.channel(name)) {
            csv.row(std::vector<std::string>{
                std::to_string(s.time), name, std::to_string(s.value)});
        }
    }
    csv.close();
}

} // namespace nvsim
