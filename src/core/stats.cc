#include "core/stats.hh"

namespace nvsim
{

Counter &
StatGroup::counter(const std::string &name)
{
    auto it = counters_.find(name);
    if (it == counters_.end()) {
        order_.push_back(name);
        it = counters_.emplace(name, Counter{}).first;
    }
    return it->second;
}

std::uint64_t
StatGroup::value(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

std::vector<std::string>
StatGroup::names() const
{
    return order_;
}

std::map<std::string, std::uint64_t>
StatGroup::snapshot() const
{
    std::map<std::string, std::uint64_t> snap;
    for (const auto &[name, ctr] : counters_)
        snap[name] = ctr.value();
    return snap;
}

void
StatGroup::resetAll()
{
    for (auto &[name, ctr] : counters_)
        ctr.reset();
}

std::map<std::string, std::uint64_t>
snapshotDelta(const std::map<std::string, std::uint64_t> &a,
              const std::map<std::string, std::uint64_t> &b)
{
    std::map<std::string, std::uint64_t> d;
    for (const auto &[name, vb] : b) {
        auto it = a.find(name);
        std::uint64_t va = it == a.end() ? 0 : it->second;
        d[name] = vb - va;
    }
    return d;
}

} // namespace nvsim
