/**
 * @file
 * Maximum-length linear feedback shift registers.
 *
 * The paper's microbenchmark generator (KernelBenchmarks.jl) uses a
 * maximum-length LFSR to generate pseudo-random array indices so that
 * "each address is touched exactly once (i.e. no repeats)". We reproduce
 * that: a Galois LFSR of width w cycles through all 2^w - 1 non-zero
 * states before repeating. Index 0 is emitted manually by the pattern
 * layer so the full index range [0, n) is covered for power-of-two n.
 */

#ifndef NVSIM_CORE_LFSR_HH
#define NVSIM_CORE_LFSR_HH

#include <cstdint>

#include "core/logging.hh"

namespace nvsim
{

/**
 * Galois LFSR with maximum-length taps for widths 2..48.
 *
 * The sequence visits every value in [1, 2^width) exactly once per
 * period. The state never becomes zero.
 */
class Lfsr
{
  public:
    /**
     * @param width register width in bits (2..48)
     * @param seed  initial state; only the low @p width bits are used and
     *              a zero state is mapped to 1
     */
    explicit Lfsr(unsigned width, std::uint64_t seed = 1);

    /** Advance one step and return the new state (never zero). */
    std::uint64_t next();

    /** Current state without advancing. */
    std::uint64_t state() const { return state_; }

    /** Period of the sequence: 2^width - 1. */
    std::uint64_t period() const { return (1ull << width_) - 1; }

    unsigned width() const { return width_; }

    /** Maximum-length tap mask for a given width (2..48). */
    static std::uint64_t tapMask(unsigned width);

    /** Smallest width whose period covers indices [1, n). */
    static unsigned widthFor(std::uint64_t n);

  private:
    unsigned width_;
    std::uint64_t taps_;
    std::uint64_t mask_;
    std::uint64_t state_;
};

} // namespace nvsim

#endif // NVSIM_CORE_LFSR_HH
