/**
 * @file
 * Minimal CSV emission so every bench can dump the series behind each
 * reproduced figure for external plotting.
 */

#ifndef NVSIM_CORE_CSV_HH
#define NVSIM_CORE_CSV_HH

#include <fstream>
#include <string>
#include <vector>

namespace nvsim
{

class TimeSeries;

/**
 * Streaming CSV writer. I/O failures are never silent: the
 * constructor and every row() fatal() on a bad stream (nonzero
 * process exit, so a bench can't report success over a truncated
 * CSV), and the destructor flushes and checks one final time.
 */
class CsvWriter
{
  public:
    /** Opens @p path for writing; fatal() on failure. */
    explicit CsvWriter(const std::string &path);

    /** Flushes; warns (cannot throw) if the final flush failed. */
    ~CsvWriter();

    /** Write a header / data row. Fields are quoted when needed. */
    void row(const std::vector<std::string> &fields);

    /** Convenience: numeric row. */
    void row(const std::vector<double> &fields);

    /**
     * Flush and verify all buffered rows reached the file; fatal() on
     * failure (disk full, unwritable path). Idempotent; called by the
     * destructor in a warn-only form.
     */
    void close();

    /** Stream health (false once any write has failed). */
    bool ok() const { return out_.good(); }

  private:
    static std::string escape(const std::string &field);

    /** fatal() if the stream went bad. */
    void check();

    std::ofstream out_;
    std::string path_;
    bool closed_ = false;
};

/**
 * Row buffer with CsvWriter's row() interface, for code that produces
 * CSV rows away from the writer — a parallel sweep task buffers its
 * rows here and the collector flushes each task's buffer in task order,
 * so the file is byte-identical to a serial run.
 */
class CsvRows
{
  public:
    void
    row(std::vector<std::string> fields)
    {
        rows_.push_back(std::move(fields));
    }

    /** Append every buffered row to @p out, in insertion order. */
    void
    flushTo(CsvWriter &out) const
    {
        for (const auto &r : rows_)
            out.row(r);
    }

    bool empty() const { return rows_.empty(); }
    std::size_t size() const { return rows_.size(); }

  private:
    std::vector<std::vector<std::string>> rows_;
};

/**
 * Dump a TimeSeries as tidy CSV: time,channel,value — one row per
 * sample, suitable for direct plotting.
 */
void writeTimeSeriesCsv(const std::string &path, const TimeSeries &series);

} // namespace nvsim

#endif // NVSIM_CORE_CSV_HH
