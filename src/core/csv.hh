/**
 * @file
 * Minimal CSV emission so every bench can dump the series behind each
 * reproduced figure for external plotting.
 */

#ifndef NVSIM_CORE_CSV_HH
#define NVSIM_CORE_CSV_HH

#include <fstream>
#include <string>
#include <vector>

namespace nvsim
{

class TimeSeries;

/** Streaming CSV writer. */
class CsvWriter
{
  public:
    /** Opens @p path for writing; fatal() on failure. */
    explicit CsvWriter(const std::string &path);

    /** Write a header / data row. Fields are quoted when needed. */
    void row(const std::vector<std::string> &fields);

    /** Convenience: numeric row. */
    void row(const std::vector<double> &fields);

  private:
    static std::string escape(const std::string &field);

    std::ofstream out_;
};

/**
 * Dump a TimeSeries as tidy CSV: time,channel,value — one row per
 * sample, suitable for direct plotting.
 */
void writeTimeSeriesCsv(const std::string &path, const TimeSeries &series);

} // namespace nvsim

#endif // NVSIM_CORE_CSV_HH
