/**
 * @file
 * Host-side phase profiler: wall-clock totals per named phase.
 *
 * Off unless NVSIM_HOST_PROFILE=1 is in the environment; when on,
 * HostPhase RAII scopes accumulate wall-clock seconds and call counts
 * per phase name, and the totals are dumped to stderr at process exit:
 *
 *   host-profile: <phase> <calls> <seconds>
 *
 * scripts/bench_report.py parses these lines into the host_phases
 * section of BENCH_PRn.json, so the CI perf gate can see *where* host
 * time went, not just that a bench got slower. Thread-safe: sweep
 * workers profile concurrently under one mutex (the scopes wrap
 * coarse phases, not per-access work).
 */

#ifndef NVSIM_CORE_HOSTPROF_HH
#define NVSIM_CORE_HOSTPROF_HH

#include <chrono>

namespace nvsim
{

class HostProfiler
{
  public:
    /** Is NVSIM_HOST_PROFILE=1 set? (cached; registers the dump). */
    static bool enabled();

    /** Account @p seconds of wall clock against @p phase. */
    static void add(const char *phase, double seconds);

    /** Dump accumulated totals to stderr (atexit; idempotent-safe). */
    static void report();
};

/** RAII scope charging its lifetime to @p phase. Free when off. */
class HostPhase
{
  public:
    explicit HostPhase(const char *phase)
        : phase_(HostProfiler::enabled() ? phase : nullptr)
    {
        if (phase_)
            start_ = std::chrono::steady_clock::now();
    }

    ~HostPhase()
    {
        if (phase_) {
            std::chrono::duration<double> dt =
                std::chrono::steady_clock::now() - start_;
            HostProfiler::add(phase_, dt.count());
        }
    }

    HostPhase(const HostPhase &) = delete;
    HostPhase &operator=(const HostPhase &) = delete;

  private:
    const char *phase_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace nvsim

#endif // NVSIM_CORE_HOSTPROF_HH
