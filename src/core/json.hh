/**
 * @file
 * Minimal JSON parser for declarative configuration files.
 *
 * Counterpart of the streaming writer in obs/json.hh: that side emits,
 * this side reads. Scope is deliberately small — parse a complete,
 * well-formed document into a DOM of JsonValue nodes so
 * SystemConfig::fromJson can walk it. Any malformed input is fatal()
 * with a line/column position: configuration files are operator input,
 * and a half-understood config must never silently run.
 *
 * Supported: objects, arrays, strings (with the standard escapes,
 * \uXXXX restricted to ASCII), numbers, true/false/null. Not
 * supported, by design: comments, trailing commas, duplicate-key
 * tolerance (duplicates are fatal).
 */

#ifndef NVSIM_CORE_JSON_HH
#define NVSIM_CORE_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace nvsim
{

/** One parsed JSON node. */
class JsonValue
{
  public:
    enum class Kind : std::uint8_t {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Typed accessors; fatal() on kind mismatch (operator input). */
    bool asBool() const;
    double asNumber() const;
    /** Number that must be a non-negative integer (counts, bytes). */
    std::uint64_t asUint() const;
    const std::string &asString() const;
    const std::vector<JsonValue> &items() const;
    const std::vector<std::pair<std::string, JsonValue>> &members() const;

    /** Object lookup; nullptr when absent (never fatal). */
    const JsonValue *find(const std::string &key) const;

    /** @name Construction (used by the parser) */
    ///@{
    static JsonValue makeNull();
    static JsonValue makeBool(bool b);
    static JsonValue makeNumber(double n);
    static JsonValue makeString(std::string s);
    static JsonValue makeArray(std::vector<JsonValue> items);
    static JsonValue makeObject(
        std::vector<std::pair<std::string, JsonValue>> members);
    ///@}

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0;
    std::string string_;
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

/**
 * Parse one complete JSON document from @p text. Trailing garbage
 * after the document, like every other syntax error, is fatal();
 * @p what names the input in the error message (e.g. a file name).
 */
JsonValue parseJson(const std::string &text,
                    const std::string &what = "json");

/** Read and parse @p path; fatal() if unreadable. */
JsonValue parseJsonFile(const std::string &path);

} // namespace nvsim

#endif // NVSIM_CORE_JSON_HH
