/**
 * @file
 * Lightweight statistics: named counters grouped in a registry, with
 * snapshot/delta support so benchmarks can sample "performance counter"
 * readings over time exactly the way the paper samples the IMC uncore
 * counters.
 */

#ifndef NVSIM_CORE_STATS_HH
#define NVSIM_CORE_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace nvsim
{

/** A monotonically increasing event counter. */
class Counter
{
  public:
    void add(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * A named group of counters. Counters are registered once and referred
 * to by pointer in hot paths; the registry supports by-name lookup,
 * snapshots and deltas for sampling.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Register (or fetch) a counter with the given name. */
    Counter &counter(const std::string &name);

    /** Read a counter by name; zero if absent. */
    std::uint64_t value(const std::string &name) const;

    /** All counter names in registration order. */
    std::vector<std::string> names() const;

    /** Snapshot of all counters, keyed by name. */
    std::map<std::string, std::uint64_t> snapshot() const;

    /** Reset all counters to zero. */
    void resetAll();

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::vector<std::string> order_;
    std::map<std::string, Counter> counters_;
};

/**
 * Difference between two snapshots (b - a), for per-interval rates.
 * Counters absent from @p a are treated as zero there.
 */
std::map<std::string, std::uint64_t>
snapshotDelta(const std::map<std::string, std::uint64_t> &a,
              const std::map<std::string, std::uint64_t> &b);

} // namespace nvsim

#endif // NVSIM_CORE_STATS_HH
