/**
 * @file
 * Fundamental types and constants shared across the nvsim library.
 *
 * nvsim models a Cascade Lake style heterogeneous memory system (DRAM +
 * Optane DC NVRAM on the same memory channels) at line granularity. All
 * addresses are simulated physical addresses in a flat byte space.
 */

#ifndef NVSIM_CORE_TYPES_HH
#define NVSIM_CORE_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace nvsim
{

/** Simulated physical byte address. */
using Addr = std::uint64_t;

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** Count of bytes. */
using Bytes = std::uint64_t;

/** Capacity literals. */
inline constexpr Bytes kKiB = 1024ull;
inline constexpr Bytes kMiB = 1024ull * kKiB;
inline constexpr Bytes kGiB = 1024ull * kMiB;
inline constexpr Bytes kTiB = 1024ull * kGiB;

/** Decimal units used when reporting bandwidth (GB/s as in the paper). */
inline constexpr double kGB = 1e9;

/** Ticks per second (1 tick = 1 ps). */
inline constexpr double kTicksPerSecond = 1e12;

/** Cache line size: both the CPU and the 2LM DRAM cache use 64 B lines. */
inline constexpr Bytes kLineSize = 64;

/**
 * Optane media access granularity. The 3D-XPoint media is accessed
 * internally in 256 B blocks; sub-block demand accesses are amplified
 * unless the on-DIMM buffers can combine them.
 */
inline constexpr Bytes kMediaBlockSize = 256;

/** Convert a byte address to its 64 B line index. */
inline constexpr Addr
lineIndex(Addr addr)
{
    return addr / kLineSize;
}

/** Align an address down to its line base. */
inline constexpr Addr
lineBase(Addr addr)
{
    return addr & ~(kLineSize - 1);
}

/** Align an address down to its 256 B media block base. */
inline constexpr Addr
mediaBlockBase(Addr addr)
{
    return addr & ~(kMediaBlockSize - 1);
}

/** Convert ticks to seconds. */
inline constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) / kTicksPerSecond;
}

/** Convert seconds to ticks. */
inline constexpr Tick
secondsToTicks(double s)
{
    return static_cast<Tick>(s * kTicksPerSecond);
}

/**
 * Kind of request the LLC issues to the integrated memory controller.
 *
 * An LlcRead is produced by a load miss or a store RFO; an LlcWrite is
 * produced by a dirty LLC eviction or by a nontemporal store (which
 * bypasses the on-chip cache entirely).
 */
enum class MemRequestKind : std::uint8_t { LlcRead, LlcWrite };

/** CPU-visible access operations used by workload generators. */
enum class CpuOp : std::uint8_t {
    Load,          //!< standard load
    Store,         //!< standard store (RFO + later dirty writeback)
    NtStore,       //!< nontemporal store (bypasses the on-chip cache)
};

/** Memory pools a physical address can be backed by in 1LM mode. */
enum class MemPool : std::uint8_t { Dram, Nvram };

} // namespace nvsim

#endif // NVSIM_CORE_TYPES_HH
