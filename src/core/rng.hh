/**
 * @file
 * Small deterministic PRNG utilities (xoshiro-style) for workload
 * generation. std::mt19937_64 is avoided in hot paths for speed; this
 * generator is reproducible across platforms.
 */

#ifndef NVSIM_CORE_RNG_HH
#define NVSIM_CORE_RNG_HH

#include <cstdint>

namespace nvsim
{

/** splitmix64 step; used to seed and to hash. */
inline std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

/** xoshiro256** PRNG. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x243F6A8885A308D3ull)
    {
        std::uint64_t x = seed;
        for (auto &word : s_)
            word = splitmix64(x);
    }

    std::uint64_t
    next()
    {
        std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform in [0, bound). */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return bound ? next() % bound : 0;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s_[4];
};

} // namespace nvsim

#endif // NVSIM_CORE_RNG_HH
