/**
 * @file
 * Human-readable formatting of bytes / bandwidth / time for bench and
 * example output.
 */

#ifndef NVSIM_CORE_UNITS_HH
#define NVSIM_CORE_UNITS_HH

#include <string>

#include "core/types.hh"

namespace nvsim
{

/** "1.5 GiB" style binary-size formatting. */
std::string formatBytes(Bytes bytes);

/** "12.3 GB/s" decimal bandwidth formatting (paper convention). */
std::string formatBandwidth(double bytes_per_second);

/** "12.3 s" / "4.5 ms" time formatting. */
std::string formatSeconds(double seconds);

} // namespace nvsim

#endif // NVSIM_CORE_UNITS_HH
