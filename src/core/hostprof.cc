#include "core/hostprof.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>

namespace nvsim
{

namespace
{

struct PhaseTotals
{
    std::uint64_t calls = 0;
    double seconds = 0;
};

// Leaked on purpose: the atexit report runs during static
// destruction, after function-local statics constructed later than
// the handler's registration would already be gone.
std::mutex &
profMutex()
{
    static std::mutex *mu = new std::mutex;
    return *mu;
}

std::map<std::string, PhaseTotals> &
profTable()
{
    static auto *table = new std::map<std::string, PhaseTotals>;
    return *table;
}

} // namespace

bool
HostProfiler::enabled()
{
    static bool on = [] {
        const char *v = std::getenv("NVSIM_HOST_PROFILE");
        bool yes = v && std::strcmp(v, "1") == 0;
        if (yes)
            std::atexit(&HostProfiler::report);
        return yes;
    }();
    return on;
}

void
HostProfiler::add(const char *phase, double seconds)
{
    std::lock_guard<std::mutex> lock(profMutex());
    PhaseTotals &t = profTable()[phase];
    ++t.calls;
    t.seconds += seconds;
}

void
HostProfiler::report()
{
    std::lock_guard<std::mutex> lock(profMutex());
    for (const auto &[phase, t] : profTable()) {
        std::fprintf(stderr, "host-profile: %s %llu %.6f\n",
                     phase.c_str(),
                     static_cast<unsigned long long>(t.calls),
                     t.seconds);
    }
}

} // namespace nvsim
