#include "core/units.hh"

#include "core/logging.hh"

namespace nvsim
{

std::string
formatBytes(Bytes bytes)
{
    const char *suffix[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    double v = static_cast<double>(bytes);
    int i = 0;
    while (v >= 1024.0 && i < 4) {
        v /= 1024.0;
        ++i;
    }
    return strprintf("%.4g %s", v, suffix[i]);
}

std::string
formatBandwidth(double bytes_per_second)
{
    return strprintf("%.2f GB/s", bytes_per_second / kGB);
}

std::string
formatSeconds(double seconds)
{
    if (seconds >= 1.0)
        return strprintf("%.3g s", seconds);
    if (seconds >= 1e-3)
        return strprintf("%.3g ms", seconds * 1e3);
    if (seconds >= 1e-6)
        return strprintf("%.3g us", seconds * 1e6);
    return strprintf("%.3g ns", seconds * 1e9);
}

} // namespace nvsim
