/**
 * @file
 * Time-series recording for bandwidth / tag-event traces.
 *
 * The paper's Figures 5, 9 and 10 are traces of counter rates sampled
 * through time. TimeSeries stores (time, value) samples per named
 * channel, and supports sliding-window averaging (Fig 10 averages over a
 * 2.5 s window "to filter high frequency components").
 *
 * Storage is the Ring template below: unbounded by default (the figure
 * traces keep every epoch), optionally capacity-bounded so long-running
 * collectors — the telemetry engine's per-run window ring — retain only
 * the newest N entries while counting what they evicted. One ring type
 * serves both users; there is no second time-series implementation.
 */

#ifndef NVSIM_CORE_TIMESERIES_HH
#define NVSIM_CORE_TIMESERIES_HH

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <map>
#include <string>
#include <vector>

namespace nvsim
{

/**
 * Append-only ring buffer. Capacity 0 (the default) never evicts —
 * the ring degenerates to a plain growable array. With a capacity,
 * pushing past it overwrites the oldest element and bumps dropped().
 * Indexing is logical: [0] is the oldest element still retained.
 */
template <typename T>
class Ring
{
  public:
    Ring() = default;
    explicit Ring(std::size_t capacity) : capacity_(capacity) {}

    void
    push(T v)
    {
        if (capacity_ == 0 || buf_.size() < capacity_) {
            buf_.push_back(std::move(v));
            return;
        }
        buf_[head_] = std::move(v);
        head_ = (head_ + 1) % capacity_;
        ++dropped_;
    }

    std::size_t size() const { return buf_.size(); }
    bool empty() const { return buf_.empty(); }
    /** Elements evicted to make room (0 while unbounded). */
    std::uint64_t dropped() const { return dropped_; }
    /** 0 = unbounded. */
    std::size_t capacity() const { return capacity_; }

    const T &
    operator[](std::size_t i) const
    {
        return buf_[(head_ + i) % buf_.size()];
    }

    T &
    operator[](std::size_t i)
    {
        return buf_[(head_ + i) % buf_.size()];
    }

    const T &back() const { return (*this)[buf_.size() - 1]; }
    T &back() { return (*this)[buf_.size() - 1]; }

    void
    clear()
    {
        buf_.clear();
        head_ = 0;
        dropped_ = 0;
    }

    /** Oldest-to-newest iteration (range-for support). */
    class const_iterator
    {
      public:
        using iterator_category = std::forward_iterator_tag;
        using value_type = T;
        using difference_type = std::ptrdiff_t;
        using pointer = const T *;
        using reference = const T &;

        const_iterator(const Ring *r, std::size_t i) : r_(r), i_(i) {}
        reference operator*() const { return (*r_)[i_]; }
        pointer operator->() const { return &(*r_)[i_]; }

        const_iterator &
        operator++()
        {
            ++i_;
            return *this;
        }

        bool
        operator==(const const_iterator &o) const
        {
            return i_ == o.i_;
        }

        bool
        operator!=(const const_iterator &o) const
        {
            return i_ != o.i_;
        }

      private:
        const Ring *r_;
        std::size_t i_;
    };

    const_iterator begin() const { return {this, 0}; }
    const_iterator end() const { return {this, buf_.size()}; }

  private:
    std::vector<T> buf_;
    std::size_t head_ = 0;  //!< physical index of the oldest element
    std::uint64_t dropped_ = 0;
    std::size_t capacity_ = 0;
};

/** One sampled point. */
struct Sample
{
    double time;    //!< seconds of simulated time
    double value;   //!< channel-specific units (GB/s, events/s, ...)
};

/** A set of named sample channels sharing a time axis. */
class TimeSeries
{
  public:
    /** Unbounded channels (the figure traces keep every epoch). */
    TimeSeries() = default;

    /** Bounded: each channel retains only the newest @p cap samples. */
    explicit TimeSeries(std::size_t cap) : channelCapacity_(cap) {}

    /** Append a sample to channel @p name. */
    void record(const std::string &name, double time, double value);

    /** All samples of a channel (empty if unknown). */
    const Ring<Sample> &channel(const std::string &name) const;

    /** Channel names in first-use order. */
    const std::vector<std::string> &names() const { return order_; }

    bool empty() const { return order_.empty(); }

    /**
     * Sliding-window average of a channel. Returns a new sample vector
     * where each point is the mean of samples within +-window/2 seconds.
     */
    std::vector<Sample>
    windowAverage(const std::string &name, double window) const;

    /** Mean value of a channel over its whole extent. */
    double mean(const std::string &name) const;

    /** Max value of a channel. */
    double max(const std::string &name) const;

  private:
    std::size_t channelCapacity_ = 0;  //!< 0 = unbounded
    std::vector<std::string> order_;
    std::map<std::string, Ring<Sample>> channels_;
    static const Ring<Sample> kEmpty;
};

} // namespace nvsim

#endif // NVSIM_CORE_TIMESERIES_HH
