/**
 * @file
 * Time-series recording for bandwidth / tag-event traces.
 *
 * The paper's Figures 5, 9 and 10 are traces of counter rates sampled
 * through time. TimeSeries stores (time, value) samples per named
 * channel, and supports sliding-window averaging (Fig 10 averages over a
 * 2.5 s window "to filter high frequency components").
 */

#ifndef NVSIM_CORE_TIMESERIES_HH
#define NVSIM_CORE_TIMESERIES_HH

#include <map>
#include <string>
#include <vector>

namespace nvsim
{

/** One sampled point. */
struct Sample
{
    double time;    //!< seconds of simulated time
    double value;   //!< channel-specific units (GB/s, events/s, ...)
};

/** A set of named sample channels sharing a time axis. */
class TimeSeries
{
  public:
    /** Append a sample to channel @p name. */
    void record(const std::string &name, double time, double value);

    /** All samples of a channel (empty if unknown). */
    const std::vector<Sample> &channel(const std::string &name) const;

    /** Channel names in first-use order. */
    const std::vector<std::string> &names() const { return order_; }

    bool empty() const { return order_.empty(); }

    /**
     * Sliding-window average of a channel. Returns a new sample vector
     * where each point is the mean of samples within +-window/2 seconds.
     */
    std::vector<Sample>
    windowAverage(const std::string &name, double window) const;

    /** Mean value of a channel over its whole extent. */
    double mean(const std::string &name) const;

    /** Max value of a channel. */
    double max(const std::string &name) const;

  private:
    std::vector<std::string> order_;
    std::map<std::string, std::vector<Sample>> channels_;
    static const std::vector<Sample> kEmpty;
};

} // namespace nvsim

#endif // NVSIM_CORE_TIMESERIES_HH
