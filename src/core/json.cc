#include "core/json.hh"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "core/logging.hh"

namespace nvsim
{

bool
JsonValue::asBool() const
{
    if (kind_ != Kind::Bool)
        fatal("json: expected a boolean");
    return bool_;
}

double
JsonValue::asNumber() const
{
    if (kind_ != Kind::Number)
        fatal("json: expected a number");
    return number_;
}

std::uint64_t
JsonValue::asUint() const
{
    double n = asNumber();
    if (n < 0 || n != std::floor(n))
        fatal("json: expected a non-negative integer, got %g", n);
    return static_cast<std::uint64_t>(n);
}

const std::string &
JsonValue::asString() const
{
    if (kind_ != Kind::String)
        fatal("json: expected a string");
    return string_;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    if (kind_ != Kind::Array)
        fatal("json: expected an array");
    return items_;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    if (kind_ != Kind::Object)
        fatal("json: expected an object");
    return members_;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &m : members()) {
        if (m.first == key)
            return &m.second;
    }
    return nullptr;
}

JsonValue
JsonValue::makeNull()
{
    return JsonValue();
}

JsonValue
JsonValue::makeBool(bool b)
{
    JsonValue v;
    v.kind_ = Kind::Bool;
    v.bool_ = b;
    return v;
}

JsonValue
JsonValue::makeNumber(double n)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.number_ = n;
    return v;
}

JsonValue
JsonValue::makeString(std::string s)
{
    JsonValue v;
    v.kind_ = Kind::String;
    v.string_ = std::move(s);
    return v;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> items)
{
    JsonValue v;
    v.kind_ = Kind::Array;
    v.items_ = std::move(items);
    return v;
}

JsonValue
JsonValue::makeObject(
    std::vector<std::pair<std::string, JsonValue>> members)
{
    JsonValue v;
    v.kind_ = Kind::Object;
    v.members_ = std::move(members);
    return v;
}

namespace
{

/** Recursive-descent parser; every error is fatal with a position. */
class Parser
{
  public:
    Parser(const std::string &text, const std::string &what)
        : text_(text), what_(what)
    {
    }

    JsonValue
    document()
    {
        JsonValue v = value();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters after the JSON document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const char *msg)
    {
        unsigned line = 1, col = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        fatal("%s:%u:%u: %s", what_.c_str(), line, col, msg);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c, const char *msg)
    {
        if (pos_ >= text_.size() || text_[pos_] != c)
            fail(msg);
        ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    JsonValue
    value()
    {
        skipWs();
        char c = peek();
        switch (c) {
          case '{':
            return object();
          case '[':
            return array();
          case '"':
            return JsonValue::makeString(string());
          case 't':
            literal("true");
            return JsonValue::makeBool(true);
          case 'f':
            literal("false");
            return JsonValue::makeBool(false);
          case 'n':
            literal("null");
            return JsonValue::makeNull();
          default:
            return number();
        }
    }

    void
    literal(const char *word)
    {
        for (const char *p = word; *p; ++p) {
            if (pos_ >= text_.size() || text_[pos_] != *p)
                fail("invalid literal");
            ++pos_;
        }
    }

    JsonValue
    object()
    {
        expect('{', "expected '{'");
        std::vector<std::pair<std::string, JsonValue>> members;
        skipWs();
        if (consume('}'))
            return JsonValue::makeObject(std::move(members));
        for (;;) {
            skipWs();
            std::string key = string();
            for (const auto &m : members) {
                if (m.first == key)
                    fail("duplicate object key");
            }
            skipWs();
            expect(':', "expected ':' after object key");
            members.emplace_back(std::move(key), value());
            skipWs();
            if (consume(','))
                continue;
            expect('}', "expected ',' or '}' in object");
            return JsonValue::makeObject(std::move(members));
        }
    }

    JsonValue
    array()
    {
        expect('[', "expected '['");
        std::vector<JsonValue> items;
        skipWs();
        if (consume(']'))
            return JsonValue::makeArray(std::move(items));
        for (;;) {
            items.push_back(value());
            skipWs();
            if (consume(','))
                continue;
            expect(']', "expected ',' or ']' in array");
            return JsonValue::makeArray(std::move(items));
        }
    }

    std::string
    string()
    {
        expect('"', "expected '\"'");
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("unescaped control character in string");
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"':
                out.push_back('"');
                break;
              case '\\':
                out.push_back('\\');
                break;
              case '/':
                out.push_back('/');
                break;
              case 'b':
                out.push_back('\b');
                break;
              case 'f':
                out.push_back('\f');
                break;
              case 'n':
                out.push_back('\n');
                break;
              case 'r':
                out.push_back('\r');
                break;
              case 't':
                out.push_back('\t');
                break;
              case 'u': {
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    if (pos_ >= text_.size() ||
                        !std::isxdigit(static_cast<unsigned char>(
                            text_[pos_])))
                        fail("invalid \\u escape");
                    char h = text_[pos_++];
                    code = code * 16 +
                           static_cast<unsigned>(
                               h <= '9' ? h - '0'
                                        : (h | 0x20) - 'a' + 10);
                }
                if (code > 0x7f)
                    fail("\\u escapes above ASCII are not supported");
                out.push_back(static_cast<char>(code));
                break;
              }
              default:
                fail("invalid escape character");
            }
        }
    }

    JsonValue
    number()
    {
        std::size_t start = pos_;
        if (consume('-')) {
        }
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            fail("expected a JSON value");
        std::string token = text_.substr(start, pos_ - start);
        char *end = nullptr;
        double n = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size()) {
            pos_ = start;
            fail("malformed number");
        }
        return JsonValue::makeNumber(n);
    }

    const std::string &text_;
    const std::string &what_;
    std::size_t pos_ = 0;
};

} // namespace

JsonValue
parseJson(const std::string &text, const std::string &what)
{
    return Parser(text, what).document();
}

JsonValue
parseJsonFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open config file '%s'", path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    return parseJson(ss.str(), path);
}

} // namespace nvsim
