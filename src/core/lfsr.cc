#include "core/lfsr.hh"

#include <bit>

namespace nvsim
{

namespace
{

/**
 * Maximum-length tap masks (Fibonacci form), indexed by width. Bit n of
 * the mask is (1 << (n-1)) for a tap at position n. Tap positions follow
 * the classic XAPP052 table, so each width yields a full 2^w - 1 period.
 */
constexpr std::uint64_t kTaps[] = {
    0, 0,
    0x3,                // 2:  2,1
    0x6,                // 3:  3,2
    0xC,                // 4:  4,3
    0x14,               // 5:  5,3
    0x30,               // 6:  6,5
    0x60,               // 7:  7,6
    0xB8,               // 8:  8,6,5,4
    0x110,              // 9:  9,5
    0x240,              // 10: 10,7
    0x500,              // 11: 11,9
    0x829,              // 12: 12,6,4,1
    0x100D,             // 13: 13,4,3,1
    0x2015,             // 14: 14,5,3,1
    0x6000,             // 15: 15,14
    0xD008,             // 16: 16,15,13,4
    0x12000,            // 17: 17,14
    0x20400,            // 18: 18,11
    0x40023,            // 19: 19,6,2,1
    0x90000,            // 20: 20,17
    0x140000,           // 21: 21,19
    0x300000,           // 22: 22,21
    0x420000,           // 23: 23,18
    0xE10000,           // 24: 24,23,22,17
    0x1200000,          // 25: 25,22
    0x2000023ull,       // 26: 26,6,2,1
    0x4000013ull,       // 27: 27,5,2,1
    0x9000000ull,       // 28: 28,25
    0x14000000ull,      // 29: 29,27
    0x20000029ull,      // 30: 30,6,4,1
    0x48000000ull,      // 31: 31,28
    0x80200003ull,      // 32: 32,22,2,1
    0x100080000ull,     // 33: 33,20
    0x204000003ull,     // 34: 34,27,2,1
    0x500000000ull,     // 35: 35,33
    0x801000000ull,     // 36: 36,25
    0x100000001Full,    // 37: 37,5,4,3,2,1
    0x2000000031ull,    // 38: 38,6,5,1
    0x4400000000ull,    // 39: 39,35
    0xA000140000ull,    // 40: 40,38,21,19
    0x12000000000ull,   // 41: 41,38
    0x300000C0000ull,   // 42: 42,41,20,19
    0x63000000000ull,   // 43: 43,42,38,37
    0xC0000030000ull,   // 44: 44,43,18,17
    0x1B0000000000ull,  // 45: 45,44,42,41
    0x300003000000ull,  // 46: 46,45,26,25
    0x420000000000ull,  // 47: 47,42
    0xC00000180000ull,  // 48: 48,47,21,20
};

} // namespace

Lfsr::Lfsr(unsigned width, std::uint64_t seed)
    : width_(width), taps_(tapMask(width)),
      mask_((1ull << width) - 1),
      state_(seed & mask_)
{
    if (state_ == 0)
        state_ = 1;
}

std::uint64_t
Lfsr::next()
{
    // Left-shift Fibonacci form: the new low bit is the XOR of the
    // tapped bits. With maximal taps this walks all 2^w - 1 nonzero
    // states.
    std::uint64_t feedback =
        static_cast<std::uint64_t>(std::popcount(state_ & taps_) & 1);
    state_ = ((state_ << 1) | feedback) & mask_;
    return state_;
}

std::uint64_t
Lfsr::tapMask(unsigned width)
{
    if (width < 2 || width > 48)
        fatal("LFSR width %u unsupported (need 2..48)", width);
    return kTaps[width];
}

unsigned
Lfsr::widthFor(std::uint64_t n)
{
    // The period is 2^w - 1, so the register must be wide enough that
    // all indices [1, n] appear (the caller maps states onto [0, n)).
    unsigned w = 2;
    while ((1ull << w) - 1 < n)
        ++w;
    if (w > 48)
        fatal("LFSR index space too large: %llu",
              static_cast<unsigned long long>(n));
    return w;
}

} // namespace nvsim
