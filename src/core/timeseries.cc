#include "core/timeseries.hh"

#include <algorithm>

namespace nvsim
{

const Ring<Sample> TimeSeries::kEmpty;

void
TimeSeries::record(const std::string &name, double time, double value)
{
    auto it = channels_.find(name);
    if (it == channels_.end()) {
        order_.push_back(name);
        it = channels_.emplace(name, Ring<Sample>(channelCapacity_))
                 .first;
    }
    it->second.push({time, value});
}

const Ring<Sample> &
TimeSeries::channel(const std::string &name) const
{
    auto it = channels_.find(name);
    return it == channels_.end() ? kEmpty : it->second;
}

std::vector<Sample>
TimeSeries::windowAverage(const std::string &name, double window) const
{
    const auto &src = channel(name);
    std::vector<Sample> out;
    out.reserve(src.size());
    double half = window / 2;
    size_t lo = 0, hi = 0;
    double sum = 0;
    for (size_t i = 0; i < src.size(); ++i) {
        double t = src[i].time;
        while (hi < src.size() && src[hi].time <= t + half) {
            sum += src[hi].value;
            ++hi;
        }
        while (lo < hi && src[lo].time < t - half) {
            sum -= src[lo].value;
            ++lo;
        }
        size_t n = hi - lo;
        out.push_back({t, n ? sum / static_cast<double>(n) : 0.0});
    }
    return out;
}

double
TimeSeries::mean(const std::string &name) const
{
    const auto &src = channel(name);
    if (src.empty())
        return 0;
    double sum = 0;
    for (const auto &s : src)
        sum += s.value;
    return sum / static_cast<double>(src.size());
}

double
TimeSeries::max(const std::string &name) const
{
    const auto &src = channel(name);
    double m = 0;
    for (const auto &s : src)
        m = std::max(m, s.value);
    return m;
}

} // namespace nvsim
