/**
 * @file
 * MemorySystem: the library's central facade.
 *
 * Workloads (microbenchmark kernels, the CNN executor, graph
 * algorithms) drive the simulated machine through this class:
 *
 *   MemorySystem sys(config);
 *   Addr a = sys.allocate(bytes, "array");
 *   sys.setActiveThreads(24);
 *   sys.submit({tid, CpuOp::Load, a + off, 64});
 *   ...
 *   sys.quiesce();
 *   PerfCounters c = sys.counters();
 *
 * Timing is epoch based: demand traffic accumulates until `epochBytes`
 * have been requested (or advanceEpoch() is called); the epoch's
 * duration is the max of (a) each channel's resource time — shared bus,
 * DRAM device, NVRAM media with write-stream contention, 2LM miss
 * handler occupancy — and (b) the demand-side limit implied by thread
 * count, per-thread MLP and request latencies. Counter rates sampled at
 * epoch boundaries form the bandwidth/tag traces of Figures 5, 9, 10.
 */

#ifndef NVSIM_SYS_MEMSYS_HH
#define NVSIM_SYS_MEMSYS_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/timeseries.hh"
#include "fault/fault.hh"
#include "imc/channel.hh"
#include "sys/config.hh"
#include "sys/llc.hh"

namespace nvsim
{

namespace exec
{
class ShardEngine;
} // namespace exec

namespace obs
{
class Observer;
class TelemetryRun;
} // namespace obs

/** A named allocation in the simulated physical address space. */
struct Region
{
    std::string name;
    Addr base = 0;
    Bytes size = 0;
    MemPool pool = MemPool::Nvram;  //!< backing pool (1LM only)

    bool
    contains(Addr addr) const
    {
        return addr >= base && addr < base + size;
    }
};

/**
 * One demand access, as submit() consumes it: a thread's operation
 * over a byte range, split into 64 B lines by the engine. The single
 * unit of work for every access engine — per-line reference, batched,
 * sharded, queued — so callers no longer choose an engine by method
 * name.
 */
struct AccessBatch
{
    unsigned thread = 0;
    CpuOp op = CpuOp::Load;
    Addr addr = 0;
    Bytes size = 0;
};

/** The simulated machine. */
class MemorySystem
{
  public:
    explicit MemorySystem(const SystemConfig &config);

    /** Seals an attached observer (its formulas read this object). */
    ~MemorySystem();

    MemorySystem(const MemorySystem &) = delete;
    MemorySystem &operator=(const MemorySystem &) = delete;

    /** @name Allocation
     * In 2LM mode all memory is NVRAM-backed (DRAM is the transparent
     * cache) and allocate() carves from one flat space. In 1LM mode
     * allocate() is NUMA-preferred: DRAM until exhausted, then NVRAM —
     * the Galois baseline policy. allocateIn() places explicitly (used
     * by AutoTM and Sage style software management).
     */
    ///@{
    Region allocate(Bytes size, const std::string &name);
    Region allocateIn(MemPool pool, Bytes size, const std::string &name);
    /** Remaining capacity of a pool (1LM). */
    Bytes poolFree(MemPool pool) const;
    ///@}

    /** @name Access
     * All sizes are in bytes; accesses are split into 64 B lines.
     */
    ///@{
    /**
     * THE demand entry point: walk the run of consecutive lines
     * covering [addr, addr + size). The engine behind it is chosen
     * here, not by the caller: the batched fast path when nothing
     * needs per-request hooks, the per-line reference loop whenever an
     * observer is attached, faults/maintenance are enabled, pages are
     * scattered, the queued controller is configured, or batching is
     * disabled via setBatchedAccess() — all bit-identical where they
     * overlap. With the queued controller the request's analytic
     * service cost becomes a Transaction enqueued at the channel and
     * its latency emerges from queue occupancy at the epoch drain.
     */
    void submit(const AccessBatch &batch);

    /** Deprecated: thin wrapper over submit(); migrate this PR. */
    void access(unsigned thread, CpuOp op, Addr addr, Bytes size);

    /** Deprecated: thin wrapper over submit(); migrate this PR. */
    void accessRange(unsigned thread, CpuOp op, Addr addr, Bytes size);

    /** Fast path: one already line-aligned line. */
    void touchLine(unsigned thread, CpuOp op, Addr line_addr);

    /**
     * Select the engine behind accessRange()/access() at runtime:
     * batched (default) or the reference per-line loop. Both produce
     * bit-identical results; the toggle exists for the equivalence
     * tests and the benches' --per-line flag.
     */
    void setBatchedAccess(bool on) { batched_ = on; }
    bool batchedAccess() const { return batched_; }

    /** Process-wide default for newly constructed systems. */
    static void setBatchedAccessDefault(bool on);

    /**
     * Shard this run's channel work across @p n worker threads
     * (exec/shard.hh): demand access runs, maintenance, fault
     * injection and the telemetry latency feed execute per channel in
     * parallel and join at a deterministic epoch barrier, where
     * per-channel counter deltas merge in fixed channel order and the
     * global effects (latency-work accumulation, poison, FaultLog,
     * telemetry) replay in original arrival order. Counters, CSVs,
     * telemetry JSON and traces are byte-identical at any n — the
     * --jobs=N contract, applied inside one run. n <= 1 disables
     * sharding (the classic immediate engine, zero overhead). An
     * attached Observer bypasses sharding, as it does batching.
     */
    void setShardThreads(unsigned n);
    unsigned shardThreads() const { return shardThreads_; }

    /** Process-wide default for newly constructed systems. */
    static void setShardThreadsDefault(unsigned n);

    /**
     * Asynchronous bulk copy through the DMA engines (Section VII-B's
     * future direction). Generates the same device traffic as a CPU
     * copy but occupies no CPU issue slots or MLP: the copy overlaps
     * with whatever the threads are doing, bounded by the engines'
     * aggregate bandwidth and the device resources. Destination lines
     * are invalidated in the LLC for coherence.
     */
    void dmaCopy(Addr dst, Addr src, Bytes bytes);
    ///@}

    /** @name Execution control */
    ///@{
    void setActiveThreads(unsigned n);
    unsigned activeThreads() const { return activeThreads_; }

    /**
     * Charge pure compute time to the current epoch: the epoch will
     * last at least this long regardless of memory traffic. Used by the
     * DNN executor for compute-bound kernels.
     */
    void addComputeTime(double seconds);

    /** Force an epoch boundary now. */
    void advanceEpoch();

    /** Flush LLC + NVRAM write buffers and close the epoch. */
    void quiesce();

    /** Simulated seconds since construction (or last resetTime). */
    double now() const { return now_; }

    /** Zero counters and traces, keep cache/LLC state (post-warmup). */
    void resetCounters();
    ///@}

    /** @name Observation */
    ///@{
    /** Aggregated uncore counters over all channels. */
    PerfCounters counters() const;

    /** Per-epoch bandwidth / tag-event trace. */
    const TimeSeries &trace() const { return trace_; }
    TimeSeries &trace() { return trace_; }

    /** Enable/disable per-epoch trace recording (on by default). */
    void recordTrace(bool on) { recordTrace_ = on; }

    /**
     * Attach the observability layer (src/obs): registers every
     * component's stats into the observer's registry, wires the
     * set-conflict profiler into the DRAM caches when requested, and
     * turns on the per-request/per-epoch hooks. Unobserved (the
     * default), every hook is one null-pointer test and the system's
     * outputs are bit-identical to a build without the obs layer.
     * The observer is not owned and must outlive the system or be
     * detached first.
     */
    void attachObserver(obs::Observer *observer);
    void detachObserver();
    obs::Observer *observer() { return obs_; }

    /**
     * Attach a telemetry collector (obs/telemetry/telemetry.hh): at
     * every epoch boundary it receives the per-channel counter blocks,
     * and every demand request's latency feeds its percentile sketch.
     * Unlike attachObserver() this does NOT force the per-line access
     * engine — the batched engine reports identical bulk latencies —
     * so telemetry collection keeps full sweep performance. Closes the
     * open epoch first so the collector starts on a clean boundary.
     * Not owned; must outlive the system or be detached first.
     */
    void attachTelemetry(obs::TelemetryRun *telemetry);
    // Pending shard replay still feeds the collector's sketch: land it
    // before unwiring.
    void
    detachTelemetry()
    {
        syncShard();
        tel_ = nullptr;
    }
    obs::TelemetryRun *telemetry() { return tel_; }

    const SystemConfig &config() const { return config_; }
    const Llc &llc() const { return llc_; }
    Llc &llc() { return llc_; }
    // Channel accessors join the shard barrier first: recorded but
    // unexecuted work must land before anyone reads channel state.
    ChannelController &
    channel(unsigned i)
    {
        syncShard();
        return channels_[i];
    }
    const ChannelController &
    channel(unsigned i) const
    {
        const_cast<MemorySystem *>(this)->syncShard();
        return channels_[i];
    }
    unsigned numChannels() const
    {
        return static_cast<unsigned>(channels_.size());
    }

    /** Which pool backs @p addr (meaningful in 1LM). */
    MemPool poolOf(Addr addr) const;

    /** Channel index serving @p addr. */
    unsigned channelOf(Addr addr) const;

    /** @name Faults and graceful degradation */
    ///@{
    /** Machine-level record of injections, poison flow and throttling. */
    const FaultLog &
    faultLog() const
    {
        const_cast<MemorySystem *>(this)->syncShard();
        return faultLog_;
    }

    /** Is the line at @p addr (virtual) currently poisoned? */
    bool isPoisoned(Addr addr);

    /** Number of currently poisoned lines. */
    std::size_t
    poisonedLines() const
    {
        const_cast<MemorySystem *>(this)->syncShard();
        return poisoned_.size();
    }

    /**
     * Take channel @p idx offline (a failed DIMM / disabled channel):
     * its buffers are drained, every 2LM cache is invalidated (the
     * interleave map changes, a reconfiguration event), and all
     * subsequent traffic re-interleaves across the surviving channels,
     * which re-solves epoch timing with the reduced parallelism and
     * bandwidth. Capacity bookkeeping is unchanged — the model answers
     * "what does losing a channel's bandwidth cost", not "what fits".
     */
    void offlineChannel(unsigned idx);

    /** Indices of the channels still online, in interleave order. */
    const std::vector<unsigned> &onlineChannels() const { return online_; }
    ///@}

    /**
     * Virtual-to-physical translation. Identity unless scatterPages is
     * configured, in which case frames are assigned first-touch in
     * pseudo-random order within the address's pool.
     */
    Addr translate(Addr addr);

    /** Total media write amplification across NVRAM DIMMs. */
    double nvramWriteAmplification() const;
    ///@}

  private:
    /**
     * Route one line-sized LLC request to its channel.
     * @param charge_demand account the request's latency against the
     *        CPU demand model (false for DMA-engine traffic)
     */
    void issueToImc(MemRequestKind kind, Addr line_addr, unsigned thread,
                    bool charge_demand = true);

    /**
     * Batched engine behind accessRange(): @p lines consecutive lines
     * from @p first, guaranteed not to cross an epoch boundary. Only
     * called when translate() is the identity, no observer is attached
     * and faults are disabled. Dispatches fastRangeImpl with either
     * the immediate emitter (execute each line now) or the shard
     * emitter (record it for the worker pool).
     */
    void fastRange(unsigned thread, CpuOp op, Addr first,
                   std::uint64_t lines);

    struct ImmediateEmit;
    struct ShardEmit;

    /**
     * The batched engine's shared body: segment the line run by
     * interleave chunk and pool, then hand every LLC outcome (device
     * single, coalesced 1LM device run, dirty-victim writeback, LLC
     * hit) to the emitter. Both emitters see the identical event
     * sequence, which is what keeps sharded output byte-identical.
     */
    template <typename Emit>
    void fastRangeImpl(unsigned thread, CpuOp op, Addr first,
                       std::uint64_t lines, Emit &emit);

    /**
     * Is channel work being recorded for the shard pool right now?
     * An attached observer needs its per-request hooks in program
     * order on one thread, so it forces the immediate engine — the
     * same rule that disables batching.
     */
    bool
    shardActive() const
    {
        return shard_ != nullptr && obs_ == nullptr;
    }

    /**
     * Epoch-barrier join: execute all recorded channel work on the
     * worker pool, merge the per-channel counter deltas in fixed
     * channel order, then replay the global effects (latency work,
     * telemetry, poison, FaultLog, DMA poison propagation) in original
     * arrival order. No-op when nothing is recorded.
     */
    void syncShard();

    void finishEpoch();
    void maybeFinishEpoch();

    /** Physical address of channel-local @p local on channel @p ch. */
    Addr physOfLocal(unsigned ch, Addr local) const;

    /** Record a request's injected faults; track poison by phys line. */
    void noteRequestFaults(const RequestFaults &f, MemRequestKind kind,
                           Addr phys, unsigned ch, bool charge_demand);

    void addPoison(Addr phys_line, bool propagated);
    void clearPoison(Addr phys_line);

    /** @name Queued controller (config_.controller.queued())
     * In queued mode every demand event is logged in arrival order
     * during the epoch — the channels still run their analytic model
     * immediately (counters, faults, device state are identical) but
     * latency accumulation is deferred. At the epoch boundary
     * runQueuedDrain() replays the log single-threaded: LLC hits and
     * posted writes accumulate at their log position, reads are
     * enqueued as Transactions (arrival clock spaced by the offered
     * bandwidth) and their latency — analytic service plus queue wait
     * plus bank penalty — lands via onTxComplete() when the per-channel
     * queues drain in fixed channel order. One accumulation point, so
     * output is byte-identical at any --jobs / --shard-threads.
     */
    ///@{
    /** One arrival-ordered demand event awaiting the epoch drain. */
    struct QueuedDemandRec
    {
        double service = 0;        //!< analytic channel latency (s)
        Addr local = 0;            //!< channel-local address
        std::uint32_t ch = 0;      //!< channel index
        std::uint16_t thread = 0;  //!< issuing thread
        std::uint8_t kind = 0;     //!< 0 = LLC hit, 1 = read, 2 = write
        bool chargeDemand = true;  //!< false for DMA interference
        std::int32_t causal = -1;  //!< index into txCausal_, or -1
    };

    /** Causal-trace state captured at issue, emitted at completion. */
    struct PendingCausal
    {
        MemRequestKind kind = MemRequestKind::LlcRead;
        CacheOutcome outcome = CacheOutcome::Hit;
        CausalBreakdown breakdown;
    };

    /** Replay txLog_ through the channel queues; epoch boundary only. */
    void runQueuedDrain();

    /** Completion callback from channel @p ch_idx's transaction queue. */
    void onTxComplete(unsigned ch_idx, const Transaction &tx,
                      const CompletionInfo &info);

    /**
     * Bytes/second of demand the queued controller sees: the explicit
     * controller.offered_gbs knob when set, otherwise the demand-side
     * aggregate issue capability (activeThreads x per-thread issue
     * bandwidth).
     */
    double offeredBandwidth() const;
    ///@}

    SystemConfig config_;
    std::vector<ChannelController> channels_;
    Llc llc_;

    // Address space layout: [0, dramPoolSize_) is the DRAM pool (1LM
    // only), [dramPoolSize_, dramPoolSize_ + nvramPoolSize_) is NVRAM.
    // In 2LM the DRAM pool has size zero.
    Bytes dramPoolSize_ = 0;
    Bytes nvramPoolSize_ = 0;
    Addr dramBrk_ = 0;   //!< next free DRAM pool byte
    Addr nvramBrk_ = 0;  //!< next free NVRAM pool byte (absolute)

    unsigned activeThreads_ = 1;
    double now_ = 0;

    // Epoch accumulators.
    Bytes epochDemandBytes_ = 0;
    double epochLatencyWork_ = 0;   //!< sum of per-line latencies
    Bytes epochLoadBytes_ = 0;      //!< demand load/RFO bytes
    Bytes epochNtStoreBytes_ = 0;   //!< demand NT store bytes
    Bytes epochDmaBytes_ = 0;       //!< bytes copied by the engines
    double epochComputeFloor_ = 0;  //!< min duration from compute
    PerfCounters lastSample_;       //!< counters at last epoch boundary

    /**
     * Per-run cached channel-interleave routing. channelOf() and the
     * channel-local address each cost integer divisions when computed
     * from config_ every line; caching the granularity's log2 (when it
     * is a power of two, the common case) and the online-channel count
     * turns the per-line routing into shift/mask plus ONE division —
     * and both engines share it, so the per-line and batched paths
     * provably route identically. Rebuilt whenever online_ changes.
     */
    struct InterleaveMap
    {
        Addr gran = 1;
        Addr granMask = 0;
        int granShift = -1;  //!< >= 0 iff gran is a power of two
        std::size_t nOnline = 1;

        void
        rebuild(Addr granularity, std::size_t n_online)
        {
            gran = granularity ? granularity : 1;
            nOnline = n_online ? n_online : 1;
            granShift = -1;
            granMask = 0;
            if ((gran & (gran - 1)) == 0) {
                granMask = gran - 1;
                granShift = 0;
                while ((Addr{1} << granShift) != gran)
                    ++granShift;
            }
        }

        /** Interleave position (index into online_) of @p phys. */
        std::size_t
        pos(Addr phys) const
        {
            const Addr chunk =
                granShift >= 0 ? phys >> granShift : phys / gran;
            return static_cast<std::size_t>(chunk % nOnline);
        }

        /**
         * Position plus channel-local address. Pow2 path: one udiv
         * (quotient and remainder of chunk / nOnline come from the
         * same division); local = floor(chunk / n) * gran + offset,
         * identical to the historical
         * (phys / (gran * n)) * gran + phys % gran
         * by the nested floor-division identity.
         */
        std::size_t
        route(Addr phys, Addr &local) const
        {
            if (granShift >= 0) {
                const Addr chunk = phys >> granShift;
                const Addr q = chunk / nOnline;
                local = (q << granShift) | (phys & granMask);
                return static_cast<std::size_t>(chunk - q * nOnline);
            }
            const Addr chunk = phys / gran;
            local = (chunk / nOnline) * gran + phys % gran;
            return static_cast<std::size_t>(chunk % nOnline);
        }
    };

    bool recordTrace_ = true;
    bool batched_;  //!< accessRange engine (see setBatchedAccess)
    unsigned shardThreads_ = 1;
    std::unique_ptr<exec::ShardEngine> shard_;  //!< nullptr when off
    InterleaveMap imap_;
    TimeSeries trace_;
    obs::Observer *obs_ = nullptr;  //!< optional, not owned
    obs::TelemetryRun *tel_ = nullptr;  //!< optional, not owned
    std::vector<PerfCounters> telScratch_;  //!< per-channel blocks

    // Fault state. faultEnabled_ caches config_.fault.enabled() so the
    // hot paths pay one predictable branch on a fault-free machine.
    bool faultEnabled_ = false;
    // Cached config_.maintenance.enabled(): maintenance produces fault
    // side effects (scrub UEs, retirement) and per-epoch bookkeeping,
    // so it forces the same reference paths fault injection does.
    bool maintEnabled_ = false;
    FaultLog faultLog_;
    // Cached config_.controller.queued(): forces the reference engine
    // and redirects latency accumulation through txLog_.
    bool queued_ = false;
    std::vector<QueuedDemandRec> txLog_;   //!< arrival-ordered events
    std::vector<PendingCausal> txCausal_;  //!< deferred causal spans
    std::unordered_set<Addr> poisoned_;     //!< poisoned phys lines
    std::vector<unsigned> online_;          //!< online channel indices
    std::vector<ChannelEpoch> epochScratch_;

    // First-touch scattered paging state (only used with
    // config_.scatterPages). Each pool owns a frame pool permuted
    // incrementally; pageMap_ holds virtual page -> physical page.
    struct PagePool
    {
        std::vector<std::uint32_t> frames;  //!< shuffled lazily
        std::size_t next = 0;               //!< frames consumed
    };
    Bytes pageSize_ = 0;
    std::vector<std::uint32_t> pageMap_;  //!< ~0u = unmapped
    PagePool dramFrames_;
    PagePool nvramFrames_;
    std::uint64_t pageRng_ = 0;

    std::uint32_t allocFrame(PagePool &pool);
};

/**
 * The canonical way to build a system from a declarative config:
 * validate() first (so every nonsense knob, including an unknown cache
 * policy, fails before any state is built), then construct. Heap
 * allocation because MemorySystem pins itself (observers and stats
 * hold pointers into it), so it must never move after construction.
 */
std::unique_ptr<MemorySystem> makeSystem(const SystemConfig &config);

} // namespace nvsim

#endif // NVSIM_SYS_MEMSYS_HH
