/**
 * @file
 * Whole-system configuration.
 *
 * Defaults reproduce the paper's test platform (Figure 1): a Cascade
 * Lake socket with 2 IMCs x 3 channels, each channel holding a 32 GiB
 * DDR4 DIMM and a 512 GiB Optane DC DIMM; 24 cores; a 33 MB LLC. All
 * six NVRAM DIMMs form one interleaved set (4 KiB granularity).
 *
 * A single `scale` divisor shrinks every *capacity* (DRAM, NVRAM, LLC,
 * and therefore every workload sized relative to them) while leaving
 * bandwidths and latencies untouched. Since every effect the paper
 * reports is a capacity-ratio effect (array vs cache size, conflicts,
 * buffer entries vs streams), scaled runs preserve the result shapes
 * while simulating in seconds.
 */

#ifndef NVSIM_SYS_CONFIG_HH
#define NVSIM_SYS_CONFIG_HH

#include "imc/channel.hh"

namespace nvsim
{

/** Full system configuration. */
struct SystemConfig
{
    /** Sockets used; 1 for microbenchmarks/CNNs, 2 for graph runs. */
    unsigned sockets = 1;
    /** Memory channels per socket (2 IMCs x 3 channels). */
    unsigned channelsPerSocket = 6;
    /** Physical cores per socket. */
    unsigned coresPerSocket = 24;

    /** Capacity scale divisor (1024 => 192 GiB DRAM becomes 192 MiB). */
    std::uint64_t scale = 1024;

    MemoryMode mode = MemoryMode::TwoLm;

    /** Per-DIMM parameters (unscaled; capacities divided by scale). */
    DramParams dram;
    NvramParams nvram;

    /**
     * Fault-injection and degradation plan (media errors, DRAM/tag ECC
     * faults, thermal throttling). All rates default to zero, which is
     * behavior-neutral: no RNG draws, no timing change, bit-identical
     * output to a build without the fault subsystem.
     */
    FaultConfig fault;

    /**
     * DRAM self-management (refresh, patrol scrub, RowHammer
     * mitigation). All-off by default, which is behavior-neutral: no
     * RNG draws, no timing change, bit-identical output.
     */
    MaintenanceConfig maintenance;

    /**
     * Queued channel controller (read queue / WPQ / banks behind a
     * ChannelScheduler). The default "analytic" scheduler is the
     * degenerate pass-through: no queues are built and output is
     * byte-identical to the pre-queue model.
     */
    ControllerConfig controller;

    /** 2LM cache options. */
    DdoConfig ddo;
    unsigned cacheWays = 1;
    bool insertOnWriteMiss = true;
    unsigned missHandlerEntries = 24;
    double busBandwidth = 21.3e9;
    /**
     * 2LM cache policy selection + policy knobs; constructed by name
     * through CachePolicyRegistry. Defaults to the reverse-engineered
     * tags-in-ECC controller.
     */
    CachePolicyConfig policy;

    /** LLC (unscaled capacity; divided by scale). */
    Bytes llcCapacity = 33 * kMiB;
    unsigned llcWays = 11;
    double llcHitLatency = 20e-9;

    /**
     * Demand-side model: per-thread memory-level parallelism (peak
     * outstanding 64 B lines) and per-thread issue bandwidth caps.
     */
    unsigned mlp = 18;
    double threadIssueBandwidth = 12e9;     //!< loads / RFOs per thread
    double threadNtStoreBandwidth = 4.5e9;  //!< nontemporal stores

    /** NVRAM interleave granularity across channels. */
    Bytes interleaveGranularity = 4 * kKiB;

    /**
     * DMA copy engines (the hardware-software co-design direction of
     * Section VII-B). Copies issued through MemorySystem::dmaCopy()
     * consume device bandwidth but no CPU issue slots, so they overlap
     * with compute. Current-systems defaults are modest: the paper
     * notes existing engines "are designed for I/O data movement and
     * not high bandwidth movement between memory technologies".
     */
    unsigned dmaEngines = 4;
    double dmaEngineBandwidth = 8e9;  //!< per engine, bytes/second

    /**
     * Demand bytes per timing epoch (scaled). Smaller epochs give finer
     * trace resolution at slightly more solver overhead.
     */
    Bytes epochBytes = 2 * kMiB;

    /**
     * Virtual-to-physical page mapping. With scatterPages the OS
     * assigns physical frames first-touch in pseudo-random order, as
     * demand paging does on a busy machine. Because the 2LM cache
     * indexes physical addresses, scattered pages turn contiguous
     * virtual working sets into conflict-prone ones — a large part of
     * why the direct-mapped cache's "inflexibility" (the paper's first
     * key limitation) bites real applications. The paper's
     * microbenchmarks dodge this deliberately with 1 GiB hugepages;
     * its application runs cannot. pageBytes is the unscaled OS page
     * size (2 MiB hugepages by default, as the graph runs configure).
     */
    bool scatterPages = false;
    Bytes pageBytes = 2 * kMiB;
    std::uint64_t pageSeed = 1;

    /** Scaled page size (floored at the channel interleave granule). */
    Bytes
    scaledPageBytes() const
    {
        Bytes scaled = pageBytes / scale;
        return scaled < interleaveGranularity ? interleaveGranularity
                                              : scaled;
    }

    /** --- derived helpers (scaled) --- */

    unsigned totalChannels() const { return sockets * channelsPerSocket; }
    unsigned totalCores() const { return sockets * coresPerSocket; }

    Bytes scaledDramPerDimm() const { return dram.capacity / scale; }
    Bytes scaledNvramPerDimm() const { return nvram.capacity / scale; }
    Bytes scaledLlc() const;

    /** Total DRAM across all channels (the 2LM cache size). */
    Bytes
    dramTotal() const
    {
        return scaledDramPerDimm() * totalChannels();
    }

    /** Total NVRAM across all channels. */
    Bytes
    nvramTotal() const
    {
        return scaledNvramPerDimm() * totalChannels();
    }

    /** Per-channel parameters with scaling and DDO sizing applied. */
    ChannelParams channelParams() const;

    /** Validate invariants; fatal() on nonsense. */
    void validate() const;

    /**
     * Serialize every user-settable knob as JSON (the same key set
     * fromJson accepts), so a config can be captured, edited and fed
     * back via --config=.
     */
    std::string toJson() const;

    /**
     * Parse a config from JSON text / a JSON file. Starts from the
     * defaults, so a config file only states what it changes. Unknown
     * keys, malformed JSON and type mismatches are fatal — a typo'd
     * knob must never silently fall back to its default.
     */
    static SystemConfig fromJson(const std::string &text);
    static SystemConfig fromJsonFile(const std::string &path);
};

} // namespace nvsim

#endif // NVSIM_SYS_CONFIG_HH
