/**
 * @file
 * Last-level cache model.
 *
 * A set-associative writeback LLC with LRU replacement. Loads and
 * standard stores (which perform a read-for-ownership) allocate lines;
 * dirty evictions become LLC writes to the IMC. Nontemporal stores
 * bypass the LLC entirely — the paper leans on them to expose raw IMC
 * behavior — but must invalidate any cached copy to stay coherent.
 */

#ifndef NVSIM_SYS_LLC_HH
#define NVSIM_SYS_LLC_HH

#include <cstdint>
#include <vector>

#include "core/types.hh"

namespace nvsim
{

/** LLC configuration. */
struct LlcParams
{
    Bytes capacity = 33 * kMiB;
    unsigned ways = 11;
};

/** What one LLC access produced. */
struct LlcResult
{
    bool hit = false;
    bool missed = false;          //!< an LLC read must go downstream
    bool evictedDirty = false;    //!< a dirty victim must be written back
    Addr victim = 0;              //!< line address of the dirty victim
};

/** Set-associative writeback LLC. */
class Llc
{
  public:
    explicit Llc(const LlcParams &params);

    /**
     * Load or standard store to the line at @p addr. Stores allocate
     * via RFO, exactly like loads, and mark the line dirty.
     */
    LlcResult access(Addr addr, bool is_store);

    /**
     * Nontemporal store: no allocation; invalidates a cached copy
     * (without writeback — the store supersedes the data).
     */
    void invalidateLine(Addr addr);

    /** Is the line resident? */
    bool resident(Addr addr) const;

    /** Drop everything without writebacks. */
    void invalidateAll();

    /**
     * Evict every dirty line, invoking @p writeback(line_addr) on each,
     * then invalidate all. Used to quiesce between benchmark phases.
     */
    template <typename F>
    void
    flush(F &&writeback)
    {
        for (std::uint64_t set = 0; set < numSets_; ++set) {
            for (unsigned w = 0; w < ways_; ++w) {
                Way &way = ways_store_[set * ways_ + w];
                if (way.valid && way.dirty)
                    writeback(addrOf(set, way.tag));
                way = Way{};
            }
        }
    }

    std::uint64_t numSets() const { return numSets_; }
    Bytes capacity() const { return numSets_ * ways_ * kLineSize; }

    /** @name Always-on access statistics (read by the obs layer) */
    ///@{
    std::uint64_t hitCount() const { return hits_; }
    std::uint64_t missCount() const { return misses_; }
    std::uint64_t dirtyEvictionCount() const { return dirtyEvictions_; }
    std::uint64_t ntInvalidateCount() const { return ntInvalidates_; }
    void
    resetStats()
    {
        hits_ = misses_ = dirtyEvictions_ = ntInvalidates_ = 0;
    }
    ///@}

  private:
    struct Way
    {
        std::uint64_t tag = 0;
        std::uint32_t lru = 0;
        bool valid = false;
        bool dirty = false;
    };

    /**
     * One division decomposes the line index into (set, tag): the
     * compiler derives the remainder from the quotient, where separate
     * setOf()/tagOf() calls would each pay a 64-bit divide on this
     * hottest of paths.
     */
    void
    splitAddr(Addr addr, std::uint64_t &set, std::uint64_t &tag) const
    {
        std::uint64_t idx = lineIndex(addr);
        tag = idx / numSets_;
        set = idx - tag * numSets_;
    }
    std::uint64_t setOf(Addr addr) const { return lineIndex(addr) % numSets_; }
    std::uint64_t tagOf(Addr addr) const { return lineIndex(addr) / numSets_; }
    Addr
    addrOf(std::uint64_t set, std::uint64_t tag) const
    {
        return (tag * numSets_ + set) * kLineSize;
    }

    unsigned ways_;
    std::uint64_t numSets_;
    std::vector<Way> ways_store_;
    std::uint32_t lruClock_ = 0;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t dirtyEvictions_ = 0;
    std::uint64_t ntInvalidates_ = 0;  //!< nontemporal-store coherence kills
};

} // namespace nvsim

#endif // NVSIM_SYS_LLC_HH
