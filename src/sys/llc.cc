#include "sys/llc.hh"

#include "core/logging.hh"

namespace nvsim
{

Llc::Llc(const LlcParams &params)
    : ways_(params.ways ? params.ways : 1),
      numSets_(params.capacity / kLineSize / ways_)
{
    if (numSets_ == 0)
        numSets_ = 1;
    ways_store_.assign(numSets_ * ways_, Way{});
}

LlcResult
Llc::access(Addr addr, bool is_store)
{
    std::uint64_t set, tag;
    splitAddr(addr, set, tag);
    Way *base = &ways_store_[set * ways_];

    LlcResult result;
    Way *way = nullptr;
    Way *victim = nullptr;
    for (unsigned w = 0; w < ways_; ++w) {
        Way &cand = base[w];
        if (cand.valid && cand.tag == tag) {
            way = &cand;
            break;
        }
        // Track the replacement victim: any invalid way wins, else LRU.
        if (!victim ||
            (victim->valid && (!cand.valid || cand.lru < victim->lru))) {
            victim = &cand;
        }
    }

    if (way) {
        result.hit = true;
        ++hits_;
    } else {
        result.missed = true;
        ++misses_;
        if (victim->valid && victim->dirty) {
            result.evictedDirty = true;
            ++dirtyEvictions_;
            result.victim = addrOf(set, victim->tag);
        }
        victim->valid = true;
        victim->dirty = false;
        victim->tag = tag;
        way = victim;
    }
    if (is_store)
        way->dirty = true;
    way->lru = ++lruClock_;
    return result;
}

void
Llc::invalidateLine(Addr addr)
{
    std::uint64_t set, tag;
    splitAddr(addr, set, tag);
    Way *base = &ways_store_[set * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            base[w] = Way{};
            ++ntInvalidates_;
            return;
        }
    }
}

bool
Llc::resident(Addr addr) const
{
    std::uint64_t set = setOf(addr);
    std::uint64_t tag = tagOf(addr);
    const Way *base = &ways_store_[set * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return true;
    }
    return false;
}

void
Llc::invalidateAll()
{
    for (auto &way : ways_store_)
        way = Way{};
}

} // namespace nvsim
