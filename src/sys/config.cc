#include "sys/config.hh"

#include <algorithm>

#include "core/logging.hh"

namespace nvsim
{

Bytes
SystemConfig::scaledLlc() const
{
    // Keep at least a few sets so associativity stays meaningful.
    return std::max<Bytes>(llcCapacity / scale,
                           static_cast<Bytes>(llcWays) * 4 * kLineSize);
}

ChannelParams
SystemConfig::channelParams() const
{
    ChannelParams p;
    p.dram = dram;
    p.dram.capacity = scaledDramPerDimm();
    p.nvram = nvram;
    p.nvram.capacity = scaledNvramPerDimm();
    p.ddo = ddo;
    p.cacheWays = cacheWays;
    p.insertOnWriteMiss = insertOnWriteMiss;
    p.busBandwidth = busBandwidth;
    p.missHandlerEntries = missHandlerEntries;
    p.policy = policy;
    p.fault = fault;  // the caller sets p.index per channel
    p.maintenance = maintenance;
    p.controller = controller;

    // Size the recent-insert tracker relative to the LLC: a dirty line
    // written back after a full LLC residency must still be remembered,
    // so cover ~4x the LLC's lines, split across channels.
    Bytes llc_lines = scaledLlc() / kLineSize;
    std::uint64_t per_channel =
        std::max<std::uint64_t>(4 * llc_lines / totalChannels(), 256);
    p.ddo.trackerEntries = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(per_channel, 1u << 24));
    return p;
}

void
SystemConfig::validate() const
{
    if (sockets == 0)
        fatal("sockets must be at least 1");
    if (channelsPerSocket == 0)
        fatal("channelsPerSocket must be at least 1");
    if (scale == 0)
        fatal("scale divisor must be nonzero");
    if (cacheWays == 0)
        fatal("cacheWays must be at least 1");
    if (interleaveGranularity == 0)
        fatal("interleaveGranularity must be nonzero");
    if (scaledDramPerDimm() < 64 * kLineSize)
        fatal("scaled DRAM DIMM too small (%llu B); lower the scale",
              static_cast<unsigned long long>(scaledDramPerDimm()));
    if (scaledDramPerDimm() < interleaveGranularity)
        fatal("scaled DRAM DIMM (%llu B) below the %llu B interleave "
              "granule; lower the scale or the granule",
              static_cast<unsigned long long>(scaledDramPerDimm()),
              static_cast<unsigned long long>(interleaveGranularity));
    if (scaledNvramPerDimm() < interleaveGranularity)
        fatal("scaled NVRAM DIMM (%llu B) below the %llu B interleave "
              "granule; lower the scale or the granule",
              static_cast<unsigned long long>(scaledNvramPerDimm()),
              static_cast<unsigned long long>(interleaveGranularity));
    if (scaledNvramPerDimm() < scaledDramPerDimm())
        fatal("NVRAM DIMM smaller than DRAM DIMM after scaling");
    if (mlp == 0)
        fatal("per-thread MLP must be at least 1");
    if (epochBytes == 0)
        fatal("epochBytes must be nonzero");
    if (epochBytes < kLineSize)
        fatal("epochBytes must cover at least one line");
    policy.validate();
    fault.validate();
    maintenance.validate();
    controller.validate();
    if (maintenance.scrub.enabled() &&
        maintenance.scrub.retireCapacity >
            scaledDramPerDimm() / kLineSize) {
        fatal("maintenance scrub retirement capacity %llu exceeds the "
              "%llu cache lines of a scaled DRAM DIMM",
              static_cast<unsigned long long>(
                  maintenance.scrub.retireCapacity),
              static_cast<unsigned long long>(scaledDramPerDimm() /
                                              kLineSize));
    }
}

} // namespace nvsim
