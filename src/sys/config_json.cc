/**
 * @file
 * Declarative SystemConfig <-> JSON.
 *
 * The JSON key set mirrors the struct one-to-one (snake_case keys,
 * nested objects per sub-struct). fromJson starts from the defaults
 * and applies only the keys present, so a config file states just what
 * it changes; toJson always emits the complete key set, so a captured
 * config is self-documenting and round-trips exactly. Unknown keys —
 * at any nesting level — are fatal: a typo'd knob must never silently
 * run with its default.
 */

#include <fstream>
#include <sstream>

#include "core/json.hh"
#include "core/logging.hh"
#include "obs/json.hh"
#include "sys/config.hh"

namespace nvsim
{

namespace
{

/** Fail on any key of @p v that checkKey() did not accept. */
class KeyChecker
{
  public:
    KeyChecker(const JsonValue &v, const std::string &where)
        : value_(v), where_(where)
    {
    }

    /** Claim @p key as known; returns its value or nullptr. */
    const JsonValue *
    get(const std::string &key)
    {
        known_.push_back(key);
        return value_.find(key);
    }

    /** After claiming every key: reject the ones nobody claimed. */
    void
    finish() const
    {
        for (const auto &m : value_.members()) {
            bool ok = false;
            for (const std::string &k : known_) {
                if (k == m.first) {
                    ok = true;
                    break;
                }
            }
            if (!ok)
                fatal("config: unknown key '%s' in %s", m.first.c_str(),
                      where_.c_str());
        }
    }

  private:
    const JsonValue &value_;
    std::string where_;
    std::vector<std::string> known_;
};

void
setUnsigned(const JsonValue *v, unsigned &out)
{
    if (v)
        out = static_cast<unsigned>(v->asUint());
}

void
setU32(const JsonValue *v, std::uint32_t &out)
{
    if (v)
        out = static_cast<std::uint32_t>(v->asUint());
}

void
setU64(const JsonValue *v, std::uint64_t &out)
{
    if (v)
        out = v->asUint();
}

void
setDouble(const JsonValue *v, double &out)
{
    if (v)
        out = v->asNumber();
}

void
setBool(const JsonValue *v, bool &out)
{
    if (v)
        out = v->asBool();
}

void
setString(const JsonValue *v, std::string &out)
{
    if (v)
        out = v->asString();
}

void
parseMode(const JsonValue *v, MemoryMode &out)
{
    if (!v)
        return;
    const std::string &s = v->asString();
    if (s == "1LM")
        out = MemoryMode::OneLm;
    else if (s == "2LM")
        out = MemoryMode::TwoLm;
    else
        fatal("config: mode must be \"1LM\" or \"2LM\", got \"%s\"",
              s.c_str());
}

void
parseDdoMode(const JsonValue *v, DdoMode &out)
{
    if (!v)
        return;
    const std::string &s = v->asString();
    if (s == "none")
        out = DdoMode::None;
    else if (s == "recent_tracker")
        out = DdoMode::RecentTracker;
    else if (s == "oracle")
        out = DdoMode::Oracle;
    else
        fatal("config: ddo.mode must be none|recent_tracker|oracle, "
              "got \"%s\"",
              s.c_str());
}

void
parseDram(const JsonValue &v, DramParams &p)
{
    KeyChecker k(v, "dram");
    setU64(k.get("capacity"), p.capacity);
    setDouble(k.get("bandwidth"), p.bandwidth);
    setDouble(k.get("latency"), p.latency);
    k.finish();
}

void
parseNvram(const JsonValue &v, NvramParams &p)
{
    KeyChecker k(v, "nvram");
    setU64(k.get("capacity"), p.capacity);
    setDouble(k.get("read_bandwidth"), p.readBandwidth);
    setDouble(k.get("write_bandwidth"), p.writeBandwidth);
    setDouble(k.get("read_latency"), p.readLatency);
    setDouble(k.get("write_latency"), p.writeLatency);
    setUnsigned(k.get("read_buffer_entries"), p.readBufferEntries);
    setUnsigned(k.get("wpq_entries"), p.wpqEntries);
    setDouble(k.get("write_contention_alpha"), p.writeContentionAlpha);
    setUnsigned(k.get("write_contention_knee"), p.writeContentionKnee);
    k.finish();
}

void
parsePolicy(const JsonValue &v, CachePolicyConfig &p)
{
    KeyChecker k(v, "policy");
    setString(k.get("kind"), p.kind);
    setString(k.get("replacement"), p.replacement);
    setUnsigned(k.get("insert_threshold"), p.insertThreshold);
    setU32(k.get("counter_entries"), p.counterEntries);
    k.finish();
}

void
parseDdo(const JsonValue &v, DdoConfig &p)
{
    KeyChecker k(v, "ddo");
    parseDdoMode(k.get("mode"), p.mode);
    setU32(k.get("tracker_entries"), p.trackerEntries);
    k.finish();
}

void
parseThrottle(const JsonValue &v, ThrottleConfig &p)
{
    KeyChecker k(v, "fault.throttle");
    setDouble(k.get("engage_bandwidth"), p.engageBandwidth);
    setDouble(k.get("release_bandwidth"), p.releaseBandwidth);
    setUnsigned(k.get("engage_epochs"), p.engageEpochs);
    setUnsigned(k.get("release_epochs"), p.releaseEpochs);
    setDouble(k.get("factor"), p.factor);
    k.finish();
}

void
parseFault(const JsonValue &v, FaultConfig &p)
{
    KeyChecker k(v, "fault");
    setU64(k.get("seed"), p.seed);
    setDouble(k.get("nvram_read_correctable"), p.nvramReadCorrectable);
    setDouble(k.get("nvram_read_uncorrectable"),
              p.nvramReadUncorrectable);
    setDouble(k.get("nvram_write_correctable"), p.nvramWriteCorrectable);
    setDouble(k.get("nvram_write_uncorrectable"),
              p.nvramWriteUncorrectable);
    setDouble(k.get("dram_correctable"), p.dramCorrectable);
    setDouble(k.get("tag_ecc_uncorrectable"), p.tagEccUncorrectable);
    setUnsigned(k.get("max_retries"), p.maxRetries);
    setDouble(k.get("retry_latency"), p.retryLatency);
    if (const JsonValue *t = k.get("throttle"))
        parseThrottle(*t, p.throttle);
    k.finish();
}

void
parseRefresh(const JsonValue &v, RefreshConfig &p)
{
    KeyChecker k(v, "maintenance.refresh");
    setDouble(k.get("trefi"), p.trefi);
    setDouble(k.get("trfc"), p.trfc);
    k.finish();
}

void
parseScrub(const JsonValue &v, ScrubConfig &p)
{
    KeyChecker k(v, "maintenance.scrub");
    setDouble(k.get("interval"), p.interval);
    setDouble(k.get("correctable"), p.correctable);
    setDouble(k.get("uncorrectable"), p.uncorrectable);
    setUnsigned(k.get("retire_threshold"), p.retireThreshold);
    setU64(k.get("retire_capacity"), p.retireCapacity);
    k.finish();
}

void
parseRowHammer(const JsonValue &v, RowHammerConfig &p)
{
    KeyChecker k(v, "maintenance.rowhammer");
    setU64(k.get("threshold"), p.threshold);
    setU32(k.get("tracker_entries"), p.trackerEntries);
    setU64(k.get("row_bytes"), p.rowBytes);
    setUnsigned(k.get("blast_radius"), p.blastRadius);
    setDouble(k.get("refresh_latency"), p.refreshLatency);
    setDouble(k.get("window"), p.window);
    k.finish();
}

void
parseMaintenance(const JsonValue &v, MaintenanceConfig &p)
{
    KeyChecker k(v, "maintenance");
    setU64(k.get("seed"), p.seed);
    if (const JsonValue *r = k.get("refresh"))
        parseRefresh(*r, p.refresh);
    if (const JsonValue *s = k.get("scrub"))
        parseScrub(*s, p.scrub);
    if (const JsonValue *rh = k.get("rowhammer"))
        parseRowHammer(*rh, p.rowhammer);
    k.finish();
}

void
parseController(const JsonValue &v, ControllerConfig &p)
{
    KeyChecker k(v, "controller");
    setString(k.get("scheduler"), p.scheduler);
    setUnsigned(k.get("read_queue_entries"), p.readQueueEntries);
    setUnsigned(k.get("write_queue_entries"), p.writeQueueEntries);
    setUnsigned(k.get("banks"), p.banks);
    setU64(k.get("row_bytes"), p.rowBytes);
    setUnsigned(k.get("drain_high_watermark"), p.drainHighWatermark);
    setUnsigned(k.get("drain_low_watermark"), p.drainLowWatermark);
    setUnsigned(k.get("starvation_cap"), p.starvationCap);
    setDouble(k.get("bank_conflict_penalty"), p.bankConflictPenalty);
    setDouble(k.get("offered_gbs"), p.offeredGBs);
    k.finish();
}

void
parseLlc(const JsonValue &v, SystemConfig &c)
{
    KeyChecker k(v, "llc");
    setU64(k.get("capacity"), c.llcCapacity);
    setUnsigned(k.get("ways"), c.llcWays);
    setDouble(k.get("hit_latency"), c.llcHitLatency);
    k.finish();
}

SystemConfig
configFromRoot(const JsonValue &root)
{
    SystemConfig c;
    KeyChecker k(root, "the top-level object");
    setUnsigned(k.get("sockets"), c.sockets);
    setUnsigned(k.get("channels_per_socket"), c.channelsPerSocket);
    setUnsigned(k.get("cores_per_socket"), c.coresPerSocket);
    setU64(k.get("scale"), c.scale);
    parseMode(k.get("mode"), c.mode);
    if (const JsonValue *v = k.get("dram"))
        parseDram(*v, c.dram);
    if (const JsonValue *v = k.get("nvram"))
        parseNvram(*v, c.nvram);
    if (const JsonValue *v = k.get("fault"))
        parseFault(*v, c.fault);
    if (const JsonValue *v = k.get("maintenance"))
        parseMaintenance(*v, c.maintenance);
    if (const JsonValue *v = k.get("controller"))
        parseController(*v, c.controller);
    if (const JsonValue *v = k.get("ddo"))
        parseDdo(*v, c.ddo);
    if (const JsonValue *v = k.get("policy"))
        parsePolicy(*v, c.policy);
    setUnsigned(k.get("cache_ways"), c.cacheWays);
    setBool(k.get("insert_on_write_miss"), c.insertOnWriteMiss);
    setUnsigned(k.get("miss_handler_entries"), c.missHandlerEntries);
    setDouble(k.get("bus_bandwidth"), c.busBandwidth);
    if (const JsonValue *v = k.get("llc"))
        parseLlc(*v, c);
    setUnsigned(k.get("mlp"), c.mlp);
    setDouble(k.get("thread_issue_bandwidth"),
              c.threadIssueBandwidth);
    setDouble(k.get("thread_nt_store_bandwidth"),
              c.threadNtStoreBandwidth);
    setU64(k.get("interleave_granularity"), c.interleaveGranularity);
    setUnsigned(k.get("dma_engines"), c.dmaEngines);
    setDouble(k.get("dma_engine_bandwidth"), c.dmaEngineBandwidth);
    setU64(k.get("epoch_bytes"), c.epochBytes);
    setBool(k.get("scatter_pages"), c.scatterPages);
    setU64(k.get("page_bytes"), c.pageBytes);
    setU64(k.get("page_seed"), c.pageSeed);
    k.finish();
    return c;
}

} // namespace

SystemConfig
SystemConfig::fromJson(const std::string &text)
{
    return configFromRoot(parseJson(text, "config"));
}

SystemConfig
SystemConfig::fromJsonFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open config file '%s'", path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    // Parse errors cite the file via parseJson's position reporting.
    return configFromRoot(parseJson(ss.str(), path));
}

std::string
SystemConfig::toJson() const
{
    std::ostringstream out;
    obs::JsonWriter w(out);
    w.beginObject();
    w.field("sockets", std::uint64_t(sockets));
    w.field("channels_per_socket", std::uint64_t(channelsPerSocket));
    w.field("cores_per_socket", std::uint64_t(coresPerSocket));
    w.field("scale", std::uint64_t(scale));
    w.field("mode", memoryModeName(mode));

    w.beginObject("dram");
    w.field("capacity", std::uint64_t(dram.capacity));
    w.field("bandwidth", dram.bandwidth);
    w.field("latency", dram.latency);
    w.endObject();

    w.beginObject("nvram");
    w.field("capacity", std::uint64_t(nvram.capacity));
    w.field("read_bandwidth", nvram.readBandwidth);
    w.field("write_bandwidth", nvram.writeBandwidth);
    w.field("read_latency", nvram.readLatency);
    w.field("write_latency", nvram.writeLatency);
    w.field("read_buffer_entries",
            std::uint64_t(nvram.readBufferEntries));
    w.field("wpq_entries", std::uint64_t(nvram.wpqEntries));
    w.field("write_contention_alpha", nvram.writeContentionAlpha);
    w.field("write_contention_knee",
            std::uint64_t(nvram.writeContentionKnee));
    w.endObject();

    w.beginObject("fault");
    w.field("seed", std::uint64_t(fault.seed));
    w.field("nvram_read_correctable", fault.nvramReadCorrectable);
    w.field("nvram_read_uncorrectable", fault.nvramReadUncorrectable);
    w.field("nvram_write_correctable", fault.nvramWriteCorrectable);
    w.field("nvram_write_uncorrectable", fault.nvramWriteUncorrectable);
    w.field("dram_correctable", fault.dramCorrectable);
    w.field("tag_ecc_uncorrectable", fault.tagEccUncorrectable);
    w.field("max_retries", std::uint64_t(fault.maxRetries));
    w.field("retry_latency", fault.retryLatency);
    w.beginObject("throttle");
    w.field("engage_bandwidth", fault.throttle.engageBandwidth);
    w.field("release_bandwidth", fault.throttle.releaseBandwidth);
    w.field("engage_epochs", std::uint64_t(fault.throttle.engageEpochs));
    w.field("release_epochs",
            std::uint64_t(fault.throttle.releaseEpochs));
    w.field("factor", fault.throttle.factor);
    w.endObject();
    w.endObject();

    w.beginObject("maintenance");
    w.field("seed", std::uint64_t(maintenance.seed));
    w.beginObject("refresh");
    w.field("trefi", maintenance.refresh.trefi);
    w.field("trfc", maintenance.refresh.trfc);
    w.endObject();
    w.beginObject("scrub");
    w.field("interval", maintenance.scrub.interval);
    w.field("correctable", maintenance.scrub.correctable);
    w.field("uncorrectable", maintenance.scrub.uncorrectable);
    w.field("retire_threshold",
            std::uint64_t(maintenance.scrub.retireThreshold));
    w.field("retire_capacity",
            std::uint64_t(maintenance.scrub.retireCapacity));
    w.endObject();
    w.beginObject("rowhammer");
    w.field("threshold", std::uint64_t(maintenance.rowhammer.threshold));
    w.field("tracker_entries",
            std::uint64_t(maintenance.rowhammer.trackerEntries));
    w.field("row_bytes", std::uint64_t(maintenance.rowhammer.rowBytes));
    w.field("blast_radius",
            std::uint64_t(maintenance.rowhammer.blastRadius));
    w.field("refresh_latency", maintenance.rowhammer.refreshLatency);
    w.field("window", maintenance.rowhammer.window);
    w.endObject();
    w.endObject();

    w.beginObject("controller");
    w.field("scheduler", controller.scheduler);
    w.field("read_queue_entries",
            std::uint64_t(controller.readQueueEntries));
    w.field("write_queue_entries",
            std::uint64_t(controller.writeQueueEntries));
    w.field("banks", std::uint64_t(controller.banks));
    w.field("row_bytes", std::uint64_t(controller.rowBytes));
    w.field("drain_high_watermark",
            std::uint64_t(controller.drainHighWatermark));
    w.field("drain_low_watermark",
            std::uint64_t(controller.drainLowWatermark));
    w.field("starvation_cap", std::uint64_t(controller.starvationCap));
    w.field("bank_conflict_penalty", controller.bankConflictPenalty);
    w.field("offered_gbs", controller.offeredGBs);
    w.endObject();

    w.beginObject("ddo");
    w.field("mode", ddoModeName(ddo.mode));
    w.field("tracker_entries", std::uint64_t(ddo.trackerEntries));
    w.endObject();

    w.beginObject("policy");
    w.field("kind", policy.kind);
    w.field("replacement", policy.replacement);
    w.field("insert_threshold", std::uint64_t(policy.insertThreshold));
    w.field("counter_entries", std::uint64_t(policy.counterEntries));
    w.endObject();

    w.field("cache_ways", std::uint64_t(cacheWays));
    w.field("insert_on_write_miss", insertOnWriteMiss);
    w.field("miss_handler_entries", std::uint64_t(missHandlerEntries));
    w.field("bus_bandwidth", busBandwidth);

    w.beginObject("llc");
    w.field("capacity", std::uint64_t(llcCapacity));
    w.field("ways", std::uint64_t(llcWays));
    w.field("hit_latency", llcHitLatency);
    w.endObject();

    w.field("mlp", std::uint64_t(mlp));
    w.field("thread_issue_bandwidth", threadIssueBandwidth);
    w.field("thread_nt_store_bandwidth", threadNtStoreBandwidth);
    w.field("interleave_granularity",
            std::uint64_t(interleaveGranularity));
    w.field("dma_engines", std::uint64_t(dmaEngines));
    w.field("dma_engine_bandwidth", dmaEngineBandwidth);
    w.field("epoch_bytes", std::uint64_t(epochBytes));
    w.field("scatter_pages", scatterPages);
    w.field("page_bytes", std::uint64_t(pageBytes));
    w.field("page_seed", std::uint64_t(pageSeed));
    w.endObject();
    return out.str();
}

} // namespace nvsim
