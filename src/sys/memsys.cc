#include "sys/memsys.hh"

#include <algorithm>

#include "core/logging.hh"
#include "core/rng.hh"

namespace nvsim
{

MemorySystem::MemorySystem(const SystemConfig &config)
    : config_(config),
      llc_(LlcParams{config.scaledLlc(), config.llcWays})
{
    config_.validate();
    ChannelParams cp = config_.channelParams();
    channels_.reserve(config_.totalChannels());
    for (unsigned i = 0; i < config_.totalChannels(); ++i)
        channels_.emplace_back(cp, config_.mode);

    if (config_.mode == MemoryMode::OneLm) {
        dramPoolSize_ = config_.dramTotal();
    } else {
        dramPoolSize_ = 0;  // DRAM is invisible: it is the cache
    }
    nvramPoolSize_ = config_.nvramTotal();
    dramBrk_ = 0;
    nvramBrk_ = dramPoolSize_;

    if (config_.scatterPages) {
        pageSize_ = config_.scaledPageBytes();
        Bytes total = dramPoolSize_ + nvramPoolSize_;
        pageMap_.assign(total / pageSize_ + 1, ~0u);
        auto fill = [&](PagePool &pool, Addr base, Bytes size) {
            std::size_t n = size / pageSize_;
            pool.frames.resize(n);
            std::uint32_t first =
                static_cast<std::uint32_t>(base / pageSize_);
            for (std::size_t i = 0; i < n; ++i)
                pool.frames[i] = first + static_cast<std::uint32_t>(i);
        };
        fill(dramFrames_, 0, dramPoolSize_);
        fill(nvramFrames_, dramPoolSize_, nvramPoolSize_);
        pageRng_ = config_.pageSeed ? config_.pageSeed : 1;
    }
}

std::uint32_t
MemorySystem::allocFrame(PagePool &pool)
{
    nvsim_assert(pool.next < pool.frames.size());
    // Incremental Fisher-Yates: pick a random not-yet-used frame.
    std::size_t remaining = pool.frames.size() - pool.next;
    std::size_t j = pool.next + splitmix64(pageRng_) % remaining;
    std::swap(pool.frames[pool.next], pool.frames[j]);
    return pool.frames[pool.next++];
}

Addr
MemorySystem::translate(Addr addr)
{
    if (!config_.scatterPages)
        return addr;
    std::size_t vpage = addr / pageSize_;
    if (pageMap_[vpage] == ~0u) {
        PagePool &pool = poolOf(addr) == MemPool::Dram ? dramFrames_
                                                       : nvramFrames_;
        pageMap_[vpage] = allocFrame(pool);
    }
    return static_cast<Addr>(pageMap_[vpage]) * pageSize_ +
           addr % pageSize_;
}

Region
MemorySystem::allocate(Bytes size, const std::string &name)
{
    if (config_.mode == MemoryMode::OneLm) {
        size = (size + kLineSize - 1) & ~(kLineSize - 1);
        if (poolFree(MemPool::Dram) >= size)
            return allocateIn(MemPool::Dram, size, name);
        // NUMA-preferred spill: fill the remaining DRAM and continue
        // into NVRAM, as first-touch page allocation does for a large
        // contiguous mapping. Only possible while the NVRAM pool is
        // untouched (the spill must be address-contiguous).
        if (poolFree(MemPool::Dram) > 0 && nvramBrk_ == dramPoolSize_ &&
            size <= poolFree(MemPool::Dram) + poolFree(MemPool::Nvram)) {
            Region r;
            r.name = name;
            r.size = size;
            r.base = dramBrk_;
            r.pool = MemPool::Dram;  // primary pool of the base address
            nvramBrk_ = dramPoolSize_ + (size - (dramPoolSize_ - dramBrk_));
            dramBrk_ = dramPoolSize_;
            return r;
        }
    }
    return allocateIn(MemPool::Nvram, size, name);
}

Region
MemorySystem::allocateIn(MemPool pool, Bytes size, const std::string &name)
{
    // Round to whole lines so regions never share a cache line.
    size = (size + kLineSize - 1) & ~(kLineSize - 1);
    Region r;
    r.name = name;
    r.size = size;
    r.pool = pool;
    if (pool == MemPool::Dram) {
        if (config_.mode != MemoryMode::OneLm)
            fatal("DRAM pool allocations need 1LM (app direct) mode");
        if (dramBrk_ + size > dramPoolSize_)
            fatal("DRAM pool exhausted allocating %llu B for '%s'",
                  static_cast<unsigned long long>(size), name.c_str());
        r.base = dramBrk_;
        dramBrk_ += size;
    } else {
        if (nvramBrk_ + size > dramPoolSize_ + nvramPoolSize_)
            fatal("NVRAM pool exhausted allocating %llu B for '%s'",
                  static_cast<unsigned long long>(size), name.c_str());
        r.base = nvramBrk_;
        nvramBrk_ += size;
    }
    return r;
}

Bytes
MemorySystem::poolFree(MemPool pool) const
{
    if (pool == MemPool::Dram)
        return dramPoolSize_ - dramBrk_;
    return dramPoolSize_ + nvramPoolSize_ - nvramBrk_;
}

MemPool
MemorySystem::poolOf(Addr addr) const
{
    return addr < dramPoolSize_ ? MemPool::Dram : MemPool::Nvram;
}

unsigned
MemorySystem::channelOf(Addr addr) const
{
    return static_cast<unsigned>(
        (addr / config_.interleaveGranularity) % channels_.size());
}

void
MemorySystem::issueToImc(MemRequestKind kind, Addr line_addr,
                         unsigned thread, bool charge_demand)
{
    // Virtual-to-physical first (the cache and DIMMs see physical
    // addresses; translate() preserves the pool).
    Addr phys = translate(line_addr);

    // Then to the channel-local address: each channel sees every
    // numChannels-th interleave chunk, compacted to a contiguous local
    // space. The hardware indexes its DRAM cache (and DIMMs) with this
    // local address, so a physically contiguous array uses every set.
    Bytes gran = config_.interleaveGranularity;
    Addr chunk = phys / (gran * channels_.size());
    Addr local = chunk * gran + phys % gran;

    MemRequest req{kind, local, static_cast<std::uint16_t>(thread)};
    ChannelController &ch = channels_[channelOf(phys)];
    AccessResult res = ch.handle(req, poolOf(phys));
    if (charge_demand)
        epochLatencyWork_ += res.latency;
}

void
MemorySystem::touchLine(unsigned thread, CpuOp op, Addr line_addr)
{
    switch (op) {
      case CpuOp::Load:
      case CpuOp::Store: {
        LlcResult lr = llc_.access(line_addr, op == CpuOp::Store);
        epochLoadBytes_ += kLineSize;
        if (lr.hit) {
            epochLatencyWork_ += config_.llcHitLatency;
        } else {
            // Load miss or store RFO.
            issueToImc(MemRequestKind::LlcRead, line_addr, thread);
            if (lr.evictedDirty)
                issueToImc(MemRequestKind::LlcWrite, lr.victim, thread);
        }
        break;
      }
      case CpuOp::NtStore: {
        llc_.invalidateLine(line_addr);
        epochNtStoreBytes_ += kLineSize;
        issueToImc(MemRequestKind::LlcWrite, line_addr, thread);
        break;
      }
    }
    epochDemandBytes_ += kLineSize;
    maybeFinishEpoch();
}

void
MemorySystem::access(unsigned thread, CpuOp op, Addr addr, Bytes size)
{
    Addr first = lineBase(addr);
    Addr last = lineBase(addr + (size ? size - 1 : 0));
    for (Addr line = first; line <= last; line += kLineSize)
        touchLine(thread, op, line);
}

void
MemorySystem::dmaCopy(Addr dst, Addr src, Bytes bytes)
{
    Addr s = lineBase(src);
    Addr d = lineBase(dst);
    Addr end = lineBase(src + (bytes ? bytes - 1 : 0));
    for (; s <= end; s += kLineSize, d += kLineSize) {
        // The engine reads the source and writes the destination
        // directly at the controllers, keeping the LLC coherent by
        // invalidating its copy of the destination (like an NT store).
        // DMA traffic is not CPU demand: no latency work is charged;
        // engine occupancy is accounted instead.
        issueToImc(MemRequestKind::LlcRead, s, 0, /*charge_demand=*/false);
        llc_.invalidateLine(d);
        issueToImc(MemRequestKind::LlcWrite, d, 0,
                   /*charge_demand=*/false);
        epochDemandBytes_ += kLineSize;
        epochDmaBytes_ += 2 * kLineSize;
        maybeFinishEpoch();
    }
}

void
MemorySystem::setActiveThreads(unsigned n)
{
    if (n == 0)
        fatal("active thread count must be positive");
    if (n != activeThreads_) {
        // Thread count affects the demand model; close the epoch so the
        // old count applies to the traffic it generated.
        advanceEpoch();
        activeThreads_ = n;
    }
}

void
MemorySystem::addComputeTime(double seconds)
{
    epochComputeFloor_ += seconds;
}

void
MemorySystem::maybeFinishEpoch()
{
    if (epochDemandBytes_ >= config_.epochBytes)
        finishEpoch();
}

void
MemorySystem::advanceEpoch()
{
    finishEpoch();
}

void
MemorySystem::finishEpoch()
{
    // Resource-side: each channel moves its epoch traffic in parallel
    // with the others.
    double t_resource = 0;
    for (auto &ch : channels_) {
        ChannelEpoch e = ch.drainEpoch();
        t_resource = std::max(t_resource, ch.epochTime(e));
    }

    // Demand-side: latency-bound issue with `mlp` outstanding lines per
    // thread, plus per-thread issue bandwidth caps.
    double threads = static_cast<double>(activeThreads_);
    double t_latency =
        epochLatencyWork_ / (threads * static_cast<double>(config_.mlp));
    double t_load_issue = static_cast<double>(epochLoadBytes_) /
                          (threads * config_.threadIssueBandwidth);
    double t_nt_issue = static_cast<double>(epochNtStoreBytes_) /
                        (threads * config_.threadNtStoreBandwidth);

    // DMA engine occupancy: copies overlap with everything else but
    // are bounded by the engines' aggregate bandwidth.
    double t_dma =
        config_.dmaEngines > 0
            ? static_cast<double>(epochDmaBytes_) /
                  (static_cast<double>(config_.dmaEngines) *
                   config_.dmaEngineBandwidth)
            : 0.0;

    double dt = std::max({t_resource, t_latency, t_load_issue, t_nt_issue,
                          t_dma, epochComputeFloor_});

    bool had_activity = epochDemandBytes_ > 0 || epochComputeFloor_ > 0;
    now_ += dt;

    if (recordTrace_ && had_activity && dt > 0) {
        PerfCounters total = counters();
        PerfCounters d = total.delta(lastSample_);
        lastSample_ = total;
        double line_bytes = static_cast<double>(kLineSize);
        auto bw = [&](std::uint64_t lines) {
            return static_cast<double>(lines) * line_bytes / dt / kGB;
        };
        trace_.record("dram_read_bw", now_, bw(d.dramRead));
        trace_.record("dram_write_bw", now_, bw(d.dramWrite));
        trace_.record("nvram_read_bw", now_, bw(d.nvramRead));
        trace_.record("nvram_write_bw", now_, bw(d.nvramWrite));
        double demand = static_cast<double>(d.demand());
        if (demand > 0) {
            trace_.record("tag_hit_frac", now_,
                          static_cast<double>(d.tagHit) / demand);
            trace_.record("tag_miss_clean_frac", now_,
                          static_cast<double>(d.tagMissClean) / demand);
            trace_.record("tag_miss_dirty_frac", now_,
                          static_cast<double>(d.tagMissDirty) / demand);
            trace_.record("ddo_hit_frac", now_,
                          static_cast<double>(d.ddoHit) / demand);
        }
        trace_.record("demand_bw", now_,
                      static_cast<double>(epochDemandBytes_) / dt / kGB);
    }

    epochDemandBytes_ = 0;
    epochLatencyWork_ = 0;
    epochLoadBytes_ = 0;
    epochNtStoreBytes_ = 0;
    epochDmaBytes_ = 0;
    epochComputeFloor_ = 0;
}

void
MemorySystem::quiesce()
{
    llc_.flush([this](Addr line) {
        issueToImc(MemRequestKind::LlcWrite, line, 0);
    });
    for (auto &ch : channels_)
        ch.drainBuffers();
    finishEpoch();
}

void
MemorySystem::resetCounters()
{
    finishEpoch();
    for (auto &ch : channels_)
        ch.counters() = PerfCounters{};
    lastSample_ = PerfCounters{};
    trace_ = TimeSeries{};
    now_ = 0;
}

PerfCounters
MemorySystem::counters() const
{
    PerfCounters total;
    for (const auto &ch : channels_)
        total += ch.counters();
    return total;
}

double
MemorySystem::nvramWriteAmplification() const
{
    Bytes demand = 0, media = 0;
    for (const auto &ch : channels_) {
        const NvramEpoch &t = ch.nvram().total();
        demand += t.demandWrites * kLineSize;
        media += t.mediaWriteBytes();
    }
    // Include the still-buffered current epoch as well.
    for (const auto &ch : channels_) {
        const NvramEpoch &e = ch.nvram().epoch();
        demand += e.demandWrites * kLineSize;
        media += e.mediaWriteBytes();
    }
    if (demand == 0)
        return 0;
    return static_cast<double>(media) / static_cast<double>(demand);
}

} // namespace nvsim
