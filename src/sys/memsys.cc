#include "sys/memsys.hh"

#include <algorithm>
#include <string>

#include "core/logging.hh"
#include "core/rng.hh"
#include "exec/shard.hh"
#include "obs/causal.hh"
#include "obs/observer.hh"
#include "obs/telemetry/telemetry.hh"

namespace nvsim
{

namespace
{
/** Process-wide engine default for new systems (--per-line flag). */
bool g_batched_default = true;

/** Process-wide shard default for new systems (--shard-threads). */
unsigned g_shard_threads_default = 1;

/** Provenance digest of the full config (any knob changes the hash). */
obs::ConfigDigest
configDigest(const SystemConfig &config)
{
    return {obs::digestHex(obs::fnv1a64(config.toJson())),
            memoryModeName(config.mode), config.scale};
}
} // namespace

void
MemorySystem::setBatchedAccessDefault(bool on)
{
    g_batched_default = on;
}

void
MemorySystem::setShardThreadsDefault(unsigned n)
{
    g_shard_threads_default = n ? n : 1;
}

void
MemorySystem::setShardThreads(unsigned n)
{
    if (n == 0)
        n = 1;
    if (n == shardThreads_)
        return;
    // Join the old pool's work before the engine changes shape.
    syncShard();
    shard_.reset();
    shardThreads_ = n;
    if (n > 1) {
        shard_ =
            std::make_unique<exec::ShardEngine>(n, numChannels());
    }
}

MemorySystem::MemorySystem(const SystemConfig &config)
    : config_(config),
      llc_(LlcParams{config.scaledLlc(), config.llcWays}),
      batched_(g_batched_default)
{
    config_.validate();
    faultEnabled_ = config_.fault.enabled();
    maintEnabled_ = config_.maintenance.enabled();
    ChannelParams cp = config_.channelParams();
    channels_.reserve(config_.totalChannels());
    online_.reserve(config_.totalChannels());
    for (unsigned i = 0; i < config_.totalChannels(); ++i) {
        cp.index = i;
        channels_.emplace_back(cp, config_.mode);
        online_.push_back(i);
    }
    imap_.rebuild(config_.interleaveGranularity, online_.size());
    setShardThreads(g_shard_threads_default);

    queued_ = config_.controller.queued();
    if (queued_) {
        // Read completions land their queue-adjusted latency here; the
        // channels never move after construction (reserve above), so
        // capturing `this` and the index is stable.
        for (unsigned i = 0; i < numChannels(); ++i) {
            channels_[i].setCompletionHandler(
                [this, i](const Transaction &tx,
                          const CompletionInfo &info) {
                    onTxComplete(i, tx, info);
                });
        }
    }

    if (config_.mode == MemoryMode::OneLm) {
        dramPoolSize_ = config_.dramTotal();
    } else {
        dramPoolSize_ = 0;  // DRAM is invisible: it is the cache
    }
    nvramPoolSize_ = config_.nvramTotal();
    dramBrk_ = 0;
    nvramBrk_ = dramPoolSize_;

    if (config_.scatterPages) {
        pageSize_ = config_.scaledPageBytes();
        Bytes total = dramPoolSize_ + nvramPoolSize_;
        pageMap_.assign(total / pageSize_ + 1, ~0u);
        auto fill = [&](PagePool &pool, Addr base, Bytes size) {
            std::size_t n = size / pageSize_;
            pool.frames.resize(n);
            std::uint32_t first =
                static_cast<std::uint32_t>(base / pageSize_);
            for (std::size_t i = 0; i < n; ++i)
                pool.frames[i] = first + static_cast<std::uint32_t>(i);
        };
        fill(dramFrames_, 0, dramPoolSize_);
        fill(nvramFrames_, dramPoolSize_, nvramPoolSize_);
        pageRng_ = config_.pageSeed ? config_.pageSeed : 1;
    }
}

MemorySystem::~MemorySystem()
{
    detachObserver();
}

void
MemorySystem::attachObserver(obs::Observer *observer)
{
    if (obs_ == observer)
        return;
    // Recorded shard work must land before the observer's formulas go
    // live (and before shardActive() flips off under it).
    syncShard();
    detachObserver();
    obs_ = observer;
    if (!obs_)
        return;

    obs_->setProvenance(configDigest(config_));

    // Wire the set-conflict profiler into every channel's cache (all
    // channels share one geometry, so one profiler sums across them).
    obs::SetProfiler *prof =
        obs_->ensureSetProfiler(channels_[0].cache().numSets());
    for (auto &ch : channels_)
        ch.cache().setProfiler(prof);

    if (obs::PerfettoTracer *tracer = obs_->tracer()) {
        for (unsigned i = 0; i < numChannels(); ++i) {
            tracer->nameTrack(obs::channelTrack(i),
                              "channel " + std::to_string(i));
        }
    }

    // If the observer dies first, it must unwire our pointers to it.
    obs_->setDetachHook([this] { detachObserver(); });

    // Stats registration: everything is a formula reading live state,
    // so observed and unobserved runs execute the same hot path.
    obs::Group &root = obs_->root();

    obs::Group &sys = root.child("sys");
    sys.formula("sim_seconds", "simulated seconds elapsed",
                [this] { return now_; });
    sys.formula("active_threads", "current demand-model thread count",
                [this] { return static_cast<double>(activeThreads_); });
    sys.formula("online_channels", "channels still in the interleave",
                [this] { return static_cast<double>(online_.size()); });
    sys.formula("poisoned_lines", "lines currently carrying poison",
                [this] { return static_cast<double>(poisoned_.size()); });
    sys.formula("nvram_write_amplification",
                "media bytes written per demand byte, all DIMMs",
                [this] { return nvramWriteAmplification(); });

    obs::Group &llc = root.child("llc");
    llc.formula("hits", "LLC hits",
                [this] { return static_cast<double>(llc_.hitCount()); });
    llc.formula("misses", "LLC misses (loads and store RFOs)", [this] {
        return static_cast<double>(llc_.missCount());
    });
    llc.formula("dirty_evictions", "dirty LLC victims written back",
                [this] {
                    return static_cast<double>(llc_.dirtyEvictionCount());
                });
    llc.formula("nt_invalidates",
                "lines invalidated by nontemporal stores", [this] {
                    return static_cast<double>(llc_.ntInvalidateCount());
                });
    llc.formula("hit_rate", "LLC hits per access", [this] {
        std::uint64_t total = llc_.hitCount() + llc_.missCount();
        return total ? static_cast<double>(llc_.hitCount()) /
                           static_cast<double>(total)
                     : 0.0;
    });

    for (unsigned i = 0; i < numChannels(); ++i) {
        obs::Group &imc = root.child("imc" + std::to_string(i));
        imc.label("channel", std::to_string(i));
        channels_[i].regStats(imc);
    }

    // The FaultLog lives below the obs layer in the link order, so its
    // stats are registered here rather than by the fault module.
    obs::Group &fault = root.child("fault");
    fault.formula("correctable", "recovered media/ECC errors",
                  [this] {
                      return static_cast<double>(faultLog_.correctable());
                  });
    fault.formula("uncorrectable", "uncorrectable media errors", [this] {
        return static_cast<double>(faultLog_.uncorrectable());
    });
    fault.formula("tag_ecc_invalidates", "2LM tags lost to ECC faults",
                  [this] {
                      return static_cast<double>(
                          faultLog_.tagEccInvalidates());
                  });
    fault.formula("machine_checks", "poisoned lines consumed by loads",
                  [this] {
                      return static_cast<double>(
                          faultLog_.machineChecks());
                  });
    fault.formula("poison_created", "lines newly poisoned", [this] {
        return static_cast<double>(faultLog_.poisonCreated());
    });
    fault.formula("poison_propagated", "poison spread by DMA copies",
                  [this] {
                      return static_cast<double>(
                          faultLog_.poisonPropagated());
                  });
    fault.formula("poison_cleared", "poisoned lines overwritten/retired",
                  [this] {
                      return static_cast<double>(
                          faultLog_.poisonCleared());
                  });
    fault.formula("lines_retired",
                  "DRAM frames mapped out by patrol scrub", [this] {
                      return static_cast<double>(
                          faultLog_.count(FaultEventKind::LineRetired));
                  });
    fault.formula("targeted_refreshes",
                  "RowHammer targeted-refresh mitigations", [this] {
                      return static_cast<double>(faultLog_.count(
                          FaultEventKind::TargetedRefresh));
                  });
}

void
MemorySystem::detachObserver()
{
    if (!obs_)
        return;
    // The registry's formulas point into this object: render them to
    // strings while the state is still alive.
    obs_->seal();
    obs_->setDetachHook({});
    for (auto &ch : channels_)
        ch.cache().setProfiler(nullptr);
    obs_ = nullptr;
}

void
MemorySystem::attachTelemetry(obs::TelemetryRun *telemetry)
{
    if (tel_ == telemetry)
        return;
    // Close the open epoch so the collector starts on a boundary, and
    // baseline its snapshots against our cumulative counters (which
    // may be nonzero after a warmup phase).
    finishEpoch();
    tel_ = telemetry;
    if (!tel_)
        return;
    telScratch_.clear();
    for (const auto &ch : channels_)
        telScratch_.push_back(ch.counters());
    tel_->prime(telScratch_.data(),
                static_cast<unsigned>(telScratch_.size()));
    tel_->setProvenance(configDigest(config_));
}

std::uint32_t
MemorySystem::allocFrame(PagePool &pool)
{
    nvsim_assert(pool.next < pool.frames.size());
    // Incremental Fisher-Yates: pick a random not-yet-used frame.
    std::size_t remaining = pool.frames.size() - pool.next;
    std::size_t j = pool.next + splitmix64(pageRng_) % remaining;
    std::swap(pool.frames[pool.next], pool.frames[j]);
    return pool.frames[pool.next++];
}

Addr
MemorySystem::translate(Addr addr)
{
    if (!config_.scatterPages)
        return addr;
    std::size_t vpage = addr / pageSize_;
    if (pageMap_[vpage] == ~0u) {
        PagePool &pool = poolOf(addr) == MemPool::Dram ? dramFrames_
                                                       : nvramFrames_;
        pageMap_[vpage] = allocFrame(pool);
    }
    return static_cast<Addr>(pageMap_[vpage]) * pageSize_ +
           addr % pageSize_;
}

Region
MemorySystem::allocate(Bytes size, const std::string &name)
{
    if (config_.mode == MemoryMode::OneLm) {
        size = (size + kLineSize - 1) & ~(kLineSize - 1);
        if (poolFree(MemPool::Dram) >= size)
            return allocateIn(MemPool::Dram, size, name);
        // NUMA-preferred spill: fill the remaining DRAM and continue
        // into NVRAM, as first-touch page allocation does for a large
        // contiguous mapping. Only possible while the NVRAM pool is
        // untouched (the spill must be address-contiguous).
        if (poolFree(MemPool::Dram) > 0 && nvramBrk_ == dramPoolSize_ &&
            size <= poolFree(MemPool::Dram) + poolFree(MemPool::Nvram)) {
            Region r;
            r.name = name;
            r.size = size;
            r.base = dramBrk_;
            r.pool = MemPool::Dram;  // primary pool of the base address
            nvramBrk_ = dramPoolSize_ + (size - (dramPoolSize_ - dramBrk_));
            dramBrk_ = dramPoolSize_;
            return r;
        }
    }
    return allocateIn(MemPool::Nvram, size, name);
}

Region
MemorySystem::allocateIn(MemPool pool, Bytes size, const std::string &name)
{
    // Round to whole lines so regions never share a cache line.
    size = (size + kLineSize - 1) & ~(kLineSize - 1);
    Region r;
    r.name = name;
    r.size = size;
    r.pool = pool;
    if (pool == MemPool::Dram) {
        if (config_.mode != MemoryMode::OneLm)
            fatal("DRAM pool allocations need 1LM (app direct) mode");
        if (dramBrk_ + size > dramPoolSize_)
            fatal("DRAM pool exhausted allocating %llu B for '%s'",
                  static_cast<unsigned long long>(size), name.c_str());
        r.base = dramBrk_;
        dramBrk_ += size;
    } else {
        if (nvramBrk_ + size > dramPoolSize_ + nvramPoolSize_)
            fatal("NVRAM pool exhausted allocating %llu B for '%s'",
                  static_cast<unsigned long long>(size), name.c_str());
        r.base = nvramBrk_;
        nvramBrk_ += size;
    }
    return r;
}

Bytes
MemorySystem::poolFree(MemPool pool) const
{
    if (pool == MemPool::Dram)
        return dramPoolSize_ - dramBrk_;
    return dramPoolSize_ + nvramPoolSize_ - nvramBrk_;
}

MemPool
MemorySystem::poolOf(Addr addr) const
{
    return addr < dramPoolSize_ ? MemPool::Dram : MemPool::Nvram;
}

unsigned
MemorySystem::channelOf(Addr addr) const
{
    // Interleave over the *online* channels; with none offlined this
    // is the identity permutation over all channels.
    return online_[imap_.pos(addr)];
}

Addr
MemorySystem::physOfLocal(unsigned ch, Addr local) const
{
    // Inverse of the local-address compaction in issueToImc(): which
    // position in the online interleave order does channel ch hold?
    Bytes gran = config_.interleaveGranularity;
    Addr chunk = local / gran;
    std::size_t pos = 0;
    for (std::size_t i = 0; i < online_.size(); ++i) {
        if (online_[i] == ch) {
            pos = i;
            break;
        }
    }
    return chunk * gran * online_.size() + pos * gran + local % gran;
}

void
MemorySystem::addPoison(Addr phys_line, bool propagated)
{
    if (poisoned_.insert(phys_line).second) {
        if (propagated)
            faultLog_.notePoisonPropagated();
        else
            faultLog_.notePoisonCreated();
    }
}

void
MemorySystem::clearPoison(Addr phys_line)
{
    if (poisoned_.erase(phys_line))
        faultLog_.notePoisonCleared();
}

bool
MemorySystem::isPoisoned(Addr addr)
{
    if (!faultEnabled_ && !maintEnabled_)
        return false;
    // Pending shard replay may still create or clear poison.
    syncShard();
    return poisoned_.count(lineBase(translate(addr))) != 0;
}

void
MemorySystem::noteRequestFaults(const RequestFaults &f,
                                MemRequestKind kind, Addr phys,
                                unsigned ch, bool charge_demand)
{
    for (std::uint32_t i = 0; i < f.correctable; ++i)
        faultLog_.record(now_, ch, FaultEventKind::CorrectableMedia,
                         phys);
    for (std::uint32_t i = 0; i < f.tagEccInvalidates; ++i)
        faultLog_.record(now_, ch, FaultEventKind::TagEccInvalidate,
                         phys);
    // Classify the uncorrectable count: tag-ECC invalidates (recorded
    // above) and 1LM DRAM data faults account for some; the remainder
    // are NVRAM media errors.
    std::uint32_t media_uc = f.uncorrectable;
    media_uc -= std::min(f.tagEccInvalidates, media_uc);
    std::uint32_t dram_uc = std::min(f.dramUncorrectable, media_uc);
    media_uc -= dram_uc;
    for (std::uint32_t i = 0; i < dram_uc; ++i)
        faultLog_.record(now_, ch, FaultEventKind::DramUncorrectable,
                         phys);
    for (std::uint32_t i = 0; i < media_uc; ++i)
        faultLog_.record(now_, ch, FaultEventKind::UncorrectableMedia,
                         phys);

    for (std::uint32_t i = 0; i < f.linesRetired; ++i) {
        faultLog_.record(now_, ch, FaultEventKind::LineRetired,
                         physOfLocal(ch, lineBase(f.retiredLine)));
    }
    for (std::uint32_t i = 0; i < f.targetedRefreshes; ++i)
        faultLog_.record(now_, ch, FaultEventKind::TargetedRefresh, phys);
    if (obs_ && (f.linesRetired || f.targetedRefreshes)) {
        if (f.linesRetired)
            obs_->noteMaintenance(now_, ch, "scrub line retired");
        if (f.targetedRefreshes)
            obs_->noteMaintenance(now_, ch, "targeted refresh");
    }

    if (f.victimPoisoned) {
        // A dirty line's only copy was lost (writeback UC error or a
        // tag-ECC invalidate of a dirty line): poison its home line.
        addPoison(physOfLocal(ch, lineBase(f.victimLine)),
                  /*propagated=*/false);
    }

    if (f.demandPoisoned) {
        if (kind == MemRequestKind::LlcRead && charge_demand) {
            // The core consumes the poisoned fill: machine check now.
            // Graceful degradation: the OS retires/refreshes the line,
            // so it does not stay poisoned.
            faultLog_.record(now_, ch, FaultEventKind::PoisonConsumed,
                             phys);
        } else {
            // DMA read or write-path loss: the line stays poisoned
            // until overwritten or consumed.
            addPoison(phys, /*propagated=*/false);
        }
    }
}

void
MemorySystem::issueToImc(MemRequestKind kind, Addr line_addr,
                         unsigned thread, bool charge_demand)
{
    // Virtual-to-physical first (the cache and DIMMs see physical
    // addresses; translate() preserves the pool), then to the
    // channel-local address: each channel sees every numChannels-th
    // interleave chunk (over the online channels), compacted to a
    // contiguous local space. The hardware indexes its DRAM cache
    // (and DIMMs) with this local address, so a physically contiguous
    // array uses every set.
    Addr phys = translate(line_addr);
    Addr local;
    unsigned ch_idx = online_[imap_.route(phys, local)];

    if (shardActive()) {
        // Record for the worker pool. The poison pre-check below never
        // affects the channel's own handling, so it is deferred to the
        // arrival-order replay in syncShard(), where poisoned_ carries
        // the state the serial engine would have seen.
        exec::ShardOp op;
        op.local = local;
        op.phys = phys;
        op.kind = kind;
        op.pool = poolOf(phys);
        op.thread = static_cast<std::uint16_t>(thread);
        op.mode = exec::ShardOpMode::Full;
        op.chargeDemand = charge_demand;
        shard_->pushOp(ch_idx, op);
        return;
    }

    if ((faultEnabled_ || maintEnabled_) && !poisoned_.empty()) {
        if (kind == MemRequestKind::LlcRead) {
            if (charge_demand && poisoned_.count(phys)) {
                // Demand load of a poisoned line: machine check; the
                // OS recovers the page (graceful degradation).
                faultLog_.record(now_, ch_idx,
                                 FaultEventKind::PoisonConsumed, phys);
                clearPoison(phys);
            }
        } else {
            // A full-line write supersedes the poisoned data.
            clearPoison(phys);
        }
    }

    MemRequest req{kind, local, static_cast<std::uint16_t>(thread)};
    obs::CausalTracer *causal =
        obs_ && charge_demand ? obs_->causal() : nullptr;
    if (causal)
        req.traced = causal->shouldSample();
    ChannelController &ch = channels_[ch_idx];
    AccessResult res = ch.handle(req, poolOf(phys));
    if (queued_) {
        // Queued controller: the channel already moved the data (its
        // counters, cache state and fault draws are the analytic
        // model's), but the request's latency is decided by queue
        // occupancy at the epoch drain. Log it in arrival order.
        QueuedDemandRec rec;
        rec.service = res.latency;
        rec.local = local;
        rec.ch = ch_idx;
        rec.thread = static_cast<std::uint16_t>(thread);
        rec.kind = kind == MemRequestKind::LlcRead ? 1 : 2;
        rec.chargeDemand = charge_demand;
        if (req.traced) {
            rec.causal = static_cast<std::int32_t>(txCausal_.size());
            txCausal_.push_back({kind, res.outcome, res.breakdown});
        }
        txLog_.push_back(rec);
    } else if (charge_demand) {
        epochLatencyWork_ += res.latency;
        if (tel_)
            tel_->noteLatency(res.latency);
    }
    if (obs_) {
        // noteRequest carries the analytic (service) latency even in
        // queued mode: it feeds outcome/action counts; the queue-aware
        // totals reach the causal tracer and telemetry at the drain.
        obs_->noteRequest(charge_demand, res.outcome,
                          res.actions.total(), res.latency);
        if (req.traced && !queued_) {
            causal->record(kind, res.outcome, res.breakdown, now_,
                           res.latency, ch_idx);
        }
    }
    if ((faultEnabled_ || maintEnabled_) && res.fault.any())
        noteRequestFaults(res.fault, kind, phys, ch_idx, charge_demand);
}

void
MemorySystem::touchLine(unsigned thread, CpuOp op, Addr line_addr)
{
    switch (op) {
      case CpuOp::Load:
      case CpuOp::Store: {
        LlcResult lr = llc_.access(line_addr, op == CpuOp::Store);
        epochLoadBytes_ += kLineSize;
        if (lr.hit) {
            if (shardActive()) {
                // The hit's latency contribution must interleave with
                // the queued misses' in program order (floating-point
                // accumulation), so it goes through the order log too.
                shard_->pushLlcHit();
            } else if (queued_) {
                // Same program-order rule for the queued drain: the
                // hit accumulates at its txLog_ position.
                QueuedDemandRec rec;
                rec.kind = 0;
                txLog_.push_back(rec);
                if (obs_)
                    obs_->noteLlcHit();
            } else {
                epochLatencyWork_ += config_.llcHitLatency;
                if (tel_)
                    tel_->noteLatency(config_.llcHitLatency);
                if (obs_)
                    obs_->noteLlcHit();
            }
        } else {
            // Load miss or store RFO.
            issueToImc(MemRequestKind::LlcRead, line_addr, thread);
            if (lr.evictedDirty)
                issueToImc(MemRequestKind::LlcWrite, lr.victim, thread);
        }
        break;
      }
      case CpuOp::NtStore: {
        llc_.invalidateLine(line_addr);
        epochNtStoreBytes_ += kLineSize;
        issueToImc(MemRequestKind::LlcWrite, line_addr, thread);
        break;
      }
    }
    epochDemandBytes_ += kLineSize;
    maybeFinishEpoch();
}

void
MemorySystem::access(unsigned thread, CpuOp op, Addr addr, Bytes size)
{
    submit({thread, op, addr, size});
}

void
MemorySystem::accessRange(unsigned thread, CpuOp op, Addr addr,
                          Bytes size)
{
    submit({thread, op, addr, size});
}

void
MemorySystem::submit(const AccessBatch &batch)
{
    const unsigned thread = batch.thread;
    const CpuOp op = batch.op;
    Addr first = lineBase(batch.addr);
    Addr last =
        lineBase(batch.addr + (batch.size ? batch.size - 1 : 0));

    // The reference per-line engine: required whenever per-request
    // hooks may fire (observer, faults), addresses are remapped
    // (scattered pages), requests must be logged for the queued
    // controller, or batching is disabled.
    if (!batched_ || obs_ || faultEnabled_ || maintEnabled_ || queued_ ||
        config_.scatterPages) {
        for (Addr line = first; line <= last; line += kLineSize)
            touchLine(thread, op, line);
        return;
    }

    // Batched engine. Epoch boundaries must land exactly where the
    // per-line loop puts them, so process at most the lines that fit
    // before the next boundary, close the epoch, and continue.
    std::uint64_t left = (last - first) / kLineSize + 1;
    Addr a = first;
    while (left) {
        Bytes room = config_.epochBytes - epochDemandBytes_;
        std::uint64_t n = std::min<std::uint64_t>(
            left, (room + kLineSize - 1) / kLineSize);
        fastRange(thread, op, a, n);
        epochDemandBytes_ += n * kLineSize;
        maybeFinishEpoch();
        a += n * kLineSize;
        left -= n;
    }
}

/**
 * fastRangeImpl emitter: execute every event immediately against the
 * channels and accumulate its latency — the classic serial engine.
 */
struct MemorySystem::ImmediateEmit
{
    MemorySystem &s;

    void
    single(unsigned ch_idx, Addr local, MemRequestKind kind,
           std::uint16_t tid, MemPool pool)
    {
        double lat = s.channels_[ch_idx].handleFast(kind, local, tid,
                                                    pool);
        s.epochLatencyWork_ += lat;
        if (s.tel_)
            s.tel_->noteLatency(lat);
    }

    void
    run(unsigned ch_idx, Addr local, std::uint64_t n,
        MemRequestKind kind, std::uint16_t tid, MemPool pool)
    {
        double lat = s.channels_[ch_idx].handleFastRun1lm(kind, local, n,
                                                          tid, pool);
        // Line-by-line accumulation, in the per-line loop's order.
        for (std::uint64_t i = 0; i < n; ++i)
            s.epochLatencyWork_ += lat;
        if (s.tel_)
            s.tel_->noteLatency(lat, n);
    }

    void
    hit()
    {
        s.epochLatencyWork_ += s.config_.llcHitLatency;
        if (s.tel_)
            s.tel_->noteLatency(s.config_.llcHitLatency);
    }
};

/**
 * fastRangeImpl emitter: record every event for the shard pool. The
 * LLC hit marker rides the order log so its latency contribution
 * replays interleaved with the misses' exactly as ImmediateEmit
 * would have accumulated them.
 */
struct MemorySystem::ShardEmit
{
    MemorySystem &s;

    void
    single(unsigned ch_idx, Addr local, MemRequestKind kind,
           std::uint16_t tid, MemPool pool)
    {
        exec::ShardOp op;
        op.local = local;
        op.kind = kind;
        op.pool = pool;
        op.thread = tid;
        op.mode = exec::ShardOpMode::Fast;
        s.shard_->pushOp(ch_idx, op);
    }

    void
    run(unsigned ch_idx, Addr local, std::uint64_t n,
        MemRequestKind kind, std::uint16_t tid, MemPool pool)
    {
        exec::ShardOp op;
        op.local = local;
        op.lines = n;
        op.kind = kind;
        op.pool = pool;
        op.thread = tid;
        op.mode = exec::ShardOpMode::Run1lm;
        s.shard_->pushOp(ch_idx, op);
    }

    void hit() { s.shard_->pushLlcHit(); }
};

void
MemorySystem::fastRange(unsigned thread, CpuOp op, Addr first,
                        std::uint64_t lines)
{
    if (shardActive()) {
        ShardEmit emit{*this};
        fastRangeImpl(thread, op, first, lines, emit);
    } else {
        ImmediateEmit emit{*this};
        fastRangeImpl(thread, op, first, lines, emit);
    }
}

template <typename Emit>
void
MemorySystem::fastRangeImpl(unsigned thread, CpuOp op, Addr first,
                            std::uint64_t lines, Emit &emit)
{
    const Bytes gran = config_.interleaveGranularity;
    const bool two_lm = config_.mode == MemoryMode::TwoLm;
    const std::uint16_t tid = static_cast<std::uint16_t>(thread);

    Addr a = first;
    std::uint64_t left = lines;
    while (left) {
        // One segment: consecutive lines within one interleave chunk
        // (one channel) and one pool, so the channel routing and the
        // local-address math hoist out of the line loop.
        Addr seg_end = a + left * kLineSize;
        Addr chunk_end = (a / gran + 1) * gran;
        if (chunk_end < seg_end)
            seg_end = chunk_end;
        if (a < dramPoolSize_ && dramPoolSize_ < seg_end)
            seg_end = dramPoolSize_;
        std::uint64_t n = (seg_end - a) / kLineSize;

        MemPool pool = a < dramPoolSize_ ? MemPool::Dram : MemPool::Nvram;
        Addr local;
        const unsigned ch_idx = online_[imap_.route(a, local)];

        if (op == CpuOp::NtStore) {
            for (Addr la = a; la < seg_end; la += kLineSize)
                llc_.invalidateLine(la);
            epochNtStoreBytes_ += n * kLineSize;
            if (two_lm) {
                Addr end = local + n * kLineSize;
                for (Addr ll = local; ll < end; ll += kLineSize)
                    emit.single(ch_idx, ll, MemRequestKind::LlcWrite,
                                tid, pool);
            } else {
                emit.run(ch_idx, local, n, MemRequestKind::LlcWrite,
                         tid, pool);
            }
        } else {
            const bool is_store = op == CpuOp::Store;
            epochLoadBytes_ += n * kLineSize;
            // 1LM: coalesce consecutive missed lines into device runs.
            // A run is flushed before any other latency contribution
            // (LLC hit, dirty victim) so the floating-point
            // accumulation into epochLatencyWork_ happens line by
            // line in exactly the per-line loop's order.
            Addr run_local = 0;
            std::uint64_t run_lines = 0;
            auto flush_run = [&]() {
                if (!run_lines)
                    return;
                emit.run(ch_idx, run_local, run_lines,
                         MemRequestKind::LlcRead, tid, pool);
                run_lines = 0;
            };
            auto issue_victim = [&](Addr victim) {
                Addr vlocal;
                unsigned vch = online_[imap_.route(victim, vlocal)];
                emit.single(vch, vlocal, MemRequestKind::LlcWrite, tid,
                            poolOf(victim));
            };
            Addr ll = local;
            for (Addr la = a; la < seg_end;
                 la += kLineSize, ll += kLineSize) {
                LlcResult lr = llc_.access(la, is_store);
                if (lr.hit) {
                    flush_run();
                    emit.hit();
                    continue;
                }
                if (two_lm) {
                    emit.single(ch_idx, ll, MemRequestKind::LlcRead,
                                tid, pool);
                    if (lr.evictedDirty)
                        issue_victim(lr.victim);
                } else {
                    if (!run_lines)
                        run_local = ll;
                    ++run_lines;
                    if (lr.evictedDirty) {
                        flush_run();
                        issue_victim(lr.victim);
                    }
                }
            }
            flush_run();
        }

        a = seg_end;
        left -= n;
    }
}

void
MemorySystem::dmaCopy(Addr dst, Addr src, Bytes bytes)
{
    double t_start = now_;
    Addr s = lineBase(src);
    Addr d = lineBase(dst);
    Addr end = lineBase(src + (bytes ? bytes - 1 : 0));
    for (; s <= end; s += kLineSize, d += kLineSize) {
        // The engine reads the source and writes the destination
        // directly at the controllers, keeping the LLC coherent by
        // invalidating its copy of the destination (like an NT store).
        // DMA traffic is not CPU demand: no latency work is charged;
        // engine occupancy is accounted instead.
        issueToImc(MemRequestKind::LlcRead, s, 0, /*charge_demand=*/false);
        llc_.invalidateLine(d);
        issueToImc(MemRequestKind::LlcWrite, d, 0,
                   /*charge_demand=*/false);
        if (faultEnabled_) {
            // Poison flows through DMA copies: the engine moves the
            // poisoned payload without consuming it (no machine check
            // until a core load touches the destination). Sharded, the
            // check rides the order log — poisoned_ only reaches this
            // copy's state during the replay, so testing it now would
            // read a stale set.
            if (shardActive()) {
                shard_->pushDmaPoison(lineBase(translate(s)),
                                      lineBase(translate(d)));
            } else if (!poisoned_.empty() &&
                       poisoned_.count(lineBase(translate(s)))) {
                addPoison(lineBase(translate(d)), /*propagated=*/true);
            }
        }
        epochDemandBytes_ += kLineSize;
        epochDmaBytes_ += 2 * kLineSize;
        maybeFinishEpoch();
    }
    if (obs_)
        obs_->noteDma(t_start, now_, bytes);
}

void
MemorySystem::setActiveThreads(unsigned n)
{
    if (n == 0)
        fatal("active thread count must be positive");
    if (n != activeThreads_) {
        // Thread count affects the demand model; close the epoch so the
        // old count applies to the traffic it generated.
        advanceEpoch();
        activeThreads_ = n;
    }
}

void
MemorySystem::addComputeTime(double seconds)
{
    epochComputeFloor_ += seconds;
}

void
MemorySystem::maybeFinishEpoch()
{
    if (epochDemandBytes_ >= config_.epochBytes)
        finishEpoch();
}

void
MemorySystem::advanceEpoch()
{
    finishEpoch();
}

void
MemorySystem::syncShard()
{
    if (!shard_ || !shard_->pending())
        return;

    // Parallel phase: one worker per channel executes that channel's
    // queued ops in order; counter deltas merge at the batch barrier.
    shard_->execute(channels_.data());

    // Ordered replay of the global effects. now_ is constant within an
    // epoch, so the FaultLog timestamps written here are the ones the
    // serial engine would have recorded at issue time.
    const bool fm = faultEnabled_ || maintEnabled_;
    shard_->drain(
        [&](unsigned ch_idx, exec::ShardOp &op) {
            switch (op.mode) {
              case exec::ShardOpMode::Full:
                // The deferred issue-side poison pre-check (see
                // issueToImc): it must see poisoned_ as of this op's
                // position in program order, and it must precede this
                // op's own fault notes.
                if (fm && !poisoned_.empty()) {
                    if (op.kind == MemRequestKind::LlcRead) {
                        if (op.chargeDemand &&
                            poisoned_.count(op.phys)) {
                            faultLog_.record(
                                now_, ch_idx,
                                FaultEventKind::PoisonConsumed,
                                op.phys);
                            clearPoison(op.phys);
                        }
                    } else {
                        clearPoison(op.phys);
                    }
                }
                if (queued_) {
                    // Queued + sharded: the replay reconstructs the
                    // arrival-order log the serial queued engine would
                    // have built (DMA traffic rides along as
                    // interference, chargeDemand=false).
                    QueuedDemandRec rec;
                    rec.service = op.latency;
                    rec.local = op.local;
                    rec.ch = ch_idx;
                    rec.thread = op.thread;
                    rec.kind =
                        op.kind == MemRequestKind::LlcRead ? 1 : 2;
                    rec.chargeDemand = op.chargeDemand;
                    txLog_.push_back(rec);
                } else if (op.chargeDemand) {
                    epochLatencyWork_ += op.latency;
                    if (tel_)
                        tel_->noteLatency(op.latency);
                }
                if (fm && op.fault.any()) {
                    noteRequestFaults(op.fault, op.kind, op.phys,
                                      ch_idx, op.chargeDemand);
                }
                break;
              case exec::ShardOpMode::Fast:
                epochLatencyWork_ += op.latency;
                if (tel_)
                    tel_->noteLatency(op.latency);
                break;
              case exec::ShardOpMode::Run1lm:
                for (std::uint64_t i = 0; i < op.lines; ++i)
                    epochLatencyWork_ += op.latency;
                if (tel_)
                    tel_->noteLatency(op.latency, op.lines);
                break;
            }
        },
        [&] {
            if (queued_) {
                QueuedDemandRec rec;
                rec.kind = 0;
                txLog_.push_back(rec);
            } else {
                epochLatencyWork_ += config_.llcHitLatency;
                if (tel_)
                    tel_->noteLatency(config_.llcHitLatency);
            }
        },
        [&](Addr src, Addr dst) {
            if (poisoned_.count(src))
                addPoison(dst, /*propagated=*/true);
        });
}

double
MemorySystem::offeredBandwidth() const
{
    if (config_.controller.offeredGBs > 0)
        return config_.controller.offeredGBs * 1e9;
    return static_cast<double>(activeThreads_) *
           config_.threadIssueBandwidth;
}

void
MemorySystem::onTxComplete(unsigned ch_idx, const Transaction &tx,
                           const CompletionInfo &info)
{
    const double total = info.latency.total();
    if (tx.kind == TransactionKind::Read && tx.chargeDemand) {
        epochLatencyWork_ += total;
        if (tel_)
            tel_->noteLatency(total);
    }
    if (tx.tag < 0 || !obs_)
        return;
    obs::CausalTracer *causal = obs_->causal();
    if (!causal)
        return;
    // Emit the deferred causal record with the queue's spans appended:
    // the analytic breakdown captured at issue, plus what the request
    // actually waited for at the controller.
    PendingCausal &pc =
        txCausal_[static_cast<std::size_t>(tx.tag)];
    CausalBreakdown b = pc.breakdown;
    if (info.latency.queueWait > 0) {
        b.add(info.drainStalled ? AccessCause::WriteDrain
                                : AccessCause::QueueWait,
              MemPool::Dram, info.latency.queueWait);
    }
    if (info.latency.bankPenalty > 0) {
        b.add(AccessCause::BankConflict, MemPool::Dram,
              info.latency.bankPenalty);
    }
    causal->record(pc.kind, pc.outcome, b, now_, total, ch_idx);
}

void
MemorySystem::runQueuedDrain()
{
    if (!queued_)
        return;
    if (txLog_.empty()) {
        txCausal_.clear();
        return;
    }

    // Offered-load clock: demand arrives at the controllers at the
    // rate the demand side can issue it, one line per tick across the
    // interleave. LLC hits never reach a controller, so they do not
    // advance the clock.
    const double gap = static_cast<double>(kLineSize) /
                       offeredBandwidth();
    double arrival = 0;
    for (const QueuedDemandRec &rec : txLog_) {
        if (rec.kind == 0) {
            epochLatencyWork_ += config_.llcHitLatency;
            if (tel_)
                tel_->noteLatency(config_.llcHitLatency);
            continue;
        }
        Transaction tx;
        tx.addr = rec.local;
        tx.arrival = arrival;
        arrival += gap;
        tx.service = rec.service;
        tx.kind = rec.kind == 1 ? TransactionKind::Read
                                : TransactionKind::Write;
        tx.thread = rec.thread;
        tx.chargeDemand = rec.chargeDemand;
        tx.tag = rec.causal;
        if (tx.kind == TransactionKind::Write && tx.chargeDemand) {
            // Posted write: the CPU-visible cost is the analytic
            // accept time, charged at the write's program-order
            // position; the WPQ residency below is pure interference.
            epochLatencyWork_ += rec.service;
            if (tel_)
                tel_->noteLatency(rec.service);
        }
        channels_[rec.ch].enqueue(tx);
    }

    // Fixed channel order: the single accumulation point that keeps
    // queued output byte-identical at any --jobs / --shard-threads.
    for (auto &ch : channels_)
        ch.drainQueues();
    txLog_.clear();
    txCausal_.clear();
}

void
MemorySystem::finishEpoch()
{
    // Join the shard barrier first: the epoch solver below reads the
    // drained channel traffic and the replayed latency work. Then the
    // queued controller replays the epoch's arrival log through the
    // channel queues, folding queue wait into the latency work and the
    // queue counters before anything samples them.
    syncShard();
    runQueuedDrain();

    // Resource-side: each channel moves its epoch traffic in parallel
    // with the others. With faults or maintenance enabled the drained
    // epochs are kept so the throttle automata can observe the epoch's
    // write rate and the maintenance engines can close their epoch.
    double t_resource = 0;
    if (!faultEnabled_ && !maintEnabled_) {
        for (auto &ch : channels_) {
            ChannelEpoch e = ch.drainEpoch();
            t_resource = std::max(t_resource, ch.epochTime(e));
        }
    } else {
        epochScratch_.clear();
        for (auto &ch : channels_) {
            epochScratch_.push_back(ch.drainEpoch());
            t_resource =
                std::max(t_resource, ch.epochTime(epochScratch_.back()));
        }
    }

    // Demand-side: latency-bound issue with `mlp` outstanding lines per
    // thread, plus per-thread issue bandwidth caps.
    double threads = static_cast<double>(activeThreads_);
    double t_latency =
        epochLatencyWork_ / (threads * static_cast<double>(config_.mlp));
    double t_load_issue = static_cast<double>(epochLoadBytes_) /
                          (threads * config_.threadIssueBandwidth);
    double t_nt_issue = static_cast<double>(epochNtStoreBytes_) /
                        (threads * config_.threadNtStoreBandwidth);

    // DMA engine occupancy: copies overlap with everything else but
    // are bounded by the engines' aggregate bandwidth.
    double t_dma =
        config_.dmaEngines > 0
            ? static_cast<double>(epochDmaBytes_) /
                  (static_cast<double>(config_.dmaEngines) *
                   config_.dmaEngineBandwidth)
            : 0.0;

    double dt = std::max({t_resource, t_latency, t_load_issue, t_nt_issue,
                          t_dma, epochComputeFloor_});

    bool had_activity = epochDemandBytes_ > 0 || epochComputeFloor_ > 0;
    now_ += dt;

    if (maintEnabled_) {
        // Close each channel's maintenance epoch: the REF commands dt
        // covers, the RowHammer tREFW window advance, and the epoch's
        // refresh/scrub/targeted-refresh stall time — before the trace
        // samples below, so the deltas land in this epoch.
        for (std::size_t i = 0; i < channels_.size(); ++i)
            channels_[i].noteMaintenanceEpoch(epochScratch_[i], dt);
    }

    if (faultEnabled_) {
        // Feed the per-DIMM thermal-throttle automata this epoch's
        // sustained media write rates; the new state applies from the
        // next epoch on (hysteretic, causal).
        for (std::size_t i = 0; i < channels_.size(); ++i) {
            ThrottleState::Transition tr =
                channels_[i].noteEpochDuration(epochScratch_[i], dt);
            if (tr == ThrottleState::Transition::Engaged) {
                faultLog_.record(now_, static_cast<unsigned>(i),
                                 FaultEventKind::ThrottleEngaged);
                if (obs_) {
                    obs_->noteThrottle(now_, static_cast<unsigned>(i),
                                       /*engaged=*/true);
                }
            } else if (tr == ThrottleState::Transition::Released) {
                faultLog_.record(now_, static_cast<unsigned>(i),
                                 FaultEventKind::ThrottleReleased);
                if (obs_) {
                    obs_->noteThrottle(now_, static_cast<unsigned>(i),
                                       /*engaged=*/false);
                }
            }
        }
    }

    if (tel_ && had_activity && dt > 0) {
        // The telemetry collector diffs against its own snapshots, so
        // it just needs the cumulative per-channel blocks.
        telScratch_.clear();
        for (const auto &ch : channels_)
            telScratch_.push_back(ch.counters());
        tel_->onEpoch(now_ - dt, now_, epochDemandBytes_,
                      telScratch_.data(),
                      static_cast<unsigned>(telScratch_.size()));
    }

    if ((recordTrace_ || obs_) && had_activity && dt > 0) {
        PerfCounters total = counters();
        PerfCounters d = total.delta(lastSample_);
        lastSample_ = total;
        if (obs_) {
            obs::EpochSample s;
            s.t0 = now_ - dt;
            s.t1 = now_;
            s.demandBytes = epochDemandBytes_;
            s.maintenance = maintEnabled_;
            s.delta = d;
            obs_->noteEpoch(s);
        }
        if (recordTrace_) {
            double line_bytes = static_cast<double>(kLineSize);
            auto bw = [&](std::uint64_t lines) {
                return static_cast<double>(lines) * line_bytes / dt / kGB;
            };
            trace_.record("dram_read_bw", now_, bw(d.dramRead));
            trace_.record("dram_write_bw", now_, bw(d.dramWrite));
            trace_.record("nvram_read_bw", now_, bw(d.nvramRead));
            trace_.record("nvram_write_bw", now_, bw(d.nvramWrite));
            double demand = static_cast<double>(d.demand());
            if (demand > 0) {
                trace_.record("tag_hit_frac", now_,
                              static_cast<double>(d.tagHit) / demand);
                trace_.record("tag_miss_clean_frac", now_,
                              static_cast<double>(d.tagMissClean) /
                                  demand);
                trace_.record("tag_miss_dirty_frac", now_,
                              static_cast<double>(d.tagMissDirty) /
                                  demand);
                trace_.record("ddo_hit_frac", now_,
                              static_cast<double>(d.ddoHit) / demand);
            }
            trace_.record("demand_bw", now_,
                          static_cast<double>(epochDemandBytes_) / dt /
                              kGB);
            if (faultEnabled_) {
                // Degradation channels (only present on faulty machines
                // so fault-free traces stay bit-identical).
                trace_.record("fault_correctable", now_,
                              static_cast<double>(d.correctableErrors));
                trace_.record("fault_uncorrectable", now_,
                              static_cast<double>(d.uncorrectableErrors));
                trace_.record("tag_ecc_invalidates", now_,
                              static_cast<double>(d.tagEccInvalidates));
                trace_.record("fault_retries", now_,
                              static_cast<double>(d.retries));
                double min_factor = 1.0;
                for (unsigned i : online_) {
                    min_factor = std::min(
                        min_factor, channels_[i].throttleFactor());
                }
                trace_.record("throttle_factor", now_, min_factor);
                trace_.record("poisoned_lines", now_,
                              static_cast<double>(poisoned_.size()));
            }
            if (maintEnabled_) {
                // Maintenance channels (only on self-managing DRAM so
                // maintenance-off traces stay bit-identical).
                trace_.record("scrub_reads", now_,
                              static_cast<double>(d.scrubReads));
                trace_.record("scrub_corrected", now_,
                              static_cast<double>(d.scrubCorrected));
                trace_.record("lines_retired", now_,
                              static_cast<double>(d.linesRetired));
                trace_.record("targeted_refreshes", now_,
                              static_cast<double>(d.targetedRefreshes));
                trace_.record("refresh_slots", now_,
                              static_cast<double>(d.refreshSlots));
                trace_.record("maintenance_stall_ns", now_,
                              static_cast<double>(d.maintenanceStallNs));
            }
        }
    }

    epochDemandBytes_ = 0;
    epochLatencyWork_ = 0;
    epochLoadBytes_ = 0;
    epochNtStoreBytes_ = 0;
    epochDmaBytes_ = 0;
    epochComputeFloor_ = 0;
}

void
MemorySystem::quiesce()
{
    llc_.flush([this](Addr line) {
        issueToImc(MemRequestKind::LlcWrite, line, 0);
    });
    // The flush may have recorded shard work: execute it before the
    // write buffers drain, or the drained state would miss it.
    syncShard();
    for (auto &ch : channels_)
        ch.drainBuffers();
    finishEpoch();
}

void
MemorySystem::resetCounters()
{
    finishEpoch();
    double prior_now = now_;
    for (auto &ch : channels_)
        ch.counters() = PerfCounters{};
    llc_.resetStats();
    lastSample_ = PerfCounters{};
    trace_ = TimeSeries{};
    now_ = 0;
    if (obs_)
        obs_->onCountersReset(prior_now);
    if (tel_)
        tel_->onCountersReset();
}

PerfCounters
MemorySystem::counters() const
{
    const_cast<MemorySystem *>(this)->syncShard();
    PerfCounters total;
    for (const auto &ch : channels_)
        total += ch.counters();
    return total;
}

void
MemorySystem::offlineChannel(unsigned idx)
{
    if (idx >= channels_.size())
        fatal("cannot offline channel %u of %zu", idx, channels_.size());
    if (online_.size() <= 1)
        fatal("cannot offline the last online channel");
    auto it = std::find(online_.begin(), online_.end(), idx);
    if (it == online_.end())
        return;  // already offline

    // Close the epoch first so traffic issued under the old interleave
    // map is timed with the old channel set.
    finishEpoch();

    channels_[idx].drainBuffers();
    online_.erase(it);
    imap_.rebuild(config_.interleaveGranularity, online_.size());

    // The interleave map changed: every channel-local address now means
    // a different physical line, so all 2LM cache contents (and the
    // offlined channel's) are stale. Model the reconfiguration as a
    // full cache invalidation — the refill cost is part of the
    // degradation being measured.
    for (auto &ch : channels_)
        ch.cache().invalidateAll();
    llc_.invalidateAll();

    faultLog_.record(now_, idx, FaultEventKind::ChannelOfflined);
    if (obs_)
        obs_->noteChannelOffline(now_, idx);
    // Offlining is itself a fault mechanism even if no rates are set.
    faultEnabled_ = true;
}

double
MemorySystem::nvramWriteAmplification() const
{
    const_cast<MemorySystem *>(this)->syncShard();
    Bytes demand = 0, media = 0;
    for (const auto &ch : channels_) {
        const NvramEpoch &t = ch.nvram().total();
        demand += t.demandWrites * kLineSize;
        media += t.mediaWriteBytes();
    }
    // Include the still-buffered current epoch as well.
    for (const auto &ch : channels_) {
        const NvramEpoch &e = ch.nvram().epoch();
        demand += e.demandWrites * kLineSize;
        media += e.mediaWriteBytes();
    }
    if (demand == 0)
        return 0;
    return static_cast<double>(media) / static_cast<double>(demand);
}

std::unique_ptr<MemorySystem>
makeSystem(const SystemConfig &config)
{
    config.validate();
    return std::make_unique<MemorySystem>(config);
}

} // namespace nvsim
