#include "profile/characterize.hh"

#include <algorithm>

#include "core/logging.hh"
#include "core/units.hh"
#include "kernels/kernels.hh"
#include "sys/memsys.hh"

namespace nvsim::profile
{

namespace
{

KernelResult
run1lm(const SystemConfig &base, Bytes array_bytes,
       const KernelConfig &k, double *write_amp = nullptr)
{
    SystemConfig cfg = base;
    cfg.mode = MemoryMode::OneLm;
    MemorySystem sys(cfg);
    Region arr = sys.allocateIn(MemPool::Nvram, array_bytes, "sweep");
    KernelResult r = runKernel(sys, arr, k);
    if (write_amp)
        *write_amp = sys.nvramWriteAmplification();
    return r;
}

KernelResult
run2lmMissStream(const SystemConfig &base, KernelOp op, bool dirty)
{
    SystemConfig cfg = base;
    cfg.mode = MemoryMode::TwoLm;
    MemorySystem sys(cfg);
    Region arr = sys.allocate(cfg.dramTotal() * 22 / 10, "sweep");
    if (dirty)
        primeDirty(sys, arr, 8);
    else
        primeClean(sys, arr, 8);
    sys.resetCounters();
    KernelConfig k;
    k.op = op;
    k.threads = 24;
    k.nontemporal = true;
    return runKernel(sys, arr, k);
}

} // namespace

double
SystemProfile::readEfficiency() const
{
    return peakReadBandwidth > 0
               ? twoLmCleanReadMissBandwidth / peakReadBandwidth
               : 0;
}

double
SystemProfile::writeEfficiency() const
{
    return peakWriteBandwidth > 0
               ? twoLmDirtyWriteMissBandwidth / peakWriteBandwidth
               : 0;
}

SystemProfile
characterize(SystemConfig config, Bytes array_bytes)
{
    SystemProfile p;

    // 1LM sequential read scaling.
    for (unsigned threads : kSweepThreads) {
        KernelConfig k;
        k.op = KernelOp::ReadOnly;
        k.threads = threads;
        double bw = run1lm(config, array_bytes, k).effectiveBandwidth;
        p.seqRead.push_back({threads, bw});
        if (bw > p.peakReadBandwidth) {
            p.peakReadBandwidth = bw;
        }
    }
    // Saturation knee: first thread count within 5% of peak.
    for (const auto &pt : p.seqRead) {
        if (pt.bandwidth >= 0.95 * p.peakReadBandwidth) {
            p.readSaturationThreads = pt.threads;
            break;
        }
    }

    // 1LM nontemporal write scaling.
    for (unsigned threads : kSweepThreads) {
        KernelConfig k;
        k.op = KernelOp::WriteOnly;
        k.nontemporal = true;
        k.threads = threads;
        double bw = run1lm(config, array_bytes, k).effectiveBandwidth;
        p.seqWriteNt.push_back({threads, bw});
        if (bw > p.peakWriteBandwidth) {
            p.peakWriteBandwidth = bw;
            p.writePeakThreads = threads;
        }
    }

    // Random 64 B reads: media amplification via counters.
    for (unsigned threads : kSweepThreads) {
        KernelConfig k;
        k.op = KernelOp::ReadOnly;
        k.pattern = AccessPattern::Random;
        k.granularity = 64;
        k.threads = threads;
        double bw = run1lm(config, array_bytes, k).effectiveBandwidth;
        p.randRead64.push_back({threads, bw});
    }
    if (!p.randRead64.empty() && p.peakReadBandwidth > 0) {
        double best_rand = 0;
        for (const auto &pt : p.randRead64)
            best_rand = std::max(best_rand, pt.bandwidth);
        p.randomRead64Amplification = p.peakReadBandwidth / best_rand;
    }

    {
        KernelConfig k;
        k.op = KernelOp::WriteOnly;
        k.nontemporal = true;
        k.pattern = AccessPattern::Random;
        k.granularity = 64;
        k.threads = 4;
        double amp = 0;
        run1lm(config, array_bytes, k, &amp);
        p.randomWrite64Amplification = amp;
    }

    // 2LM miss streams.
    {
        KernelResult r =
            run2lmMissStream(config, KernelOp::ReadOnly, false);
        p.twoLmCleanReadMissBandwidth = r.effectiveBandwidth;
        p.twoLmReadMissAmplification = r.counters.amplification();
    }
    {
        KernelResult r =
            run2lmMissStream(config, KernelOp::WriteOnly, true);
        p.twoLmDirtyWriteMissBandwidth = r.effectiveBandwidth;
        p.twoLmWriteMissAmplification = r.counters.amplification();
    }
    return p;
}

std::string
report(const SystemProfile &p)
{
    std::string out;
    out += "=== system memory profile ===\n";
    out += "1LM sequential read:\n";
    for (const auto &pt : p.seqRead) {
        out += strprintf("  %2u threads: %s\n", pt.threads,
                         formatBandwidth(pt.bandwidth).c_str());
    }
    out += strprintf("  peak %s, saturates at %u threads\n",
                     formatBandwidth(p.peakReadBandwidth).c_str(),
                     p.readSaturationThreads);
    out += "1LM nontemporal write:\n";
    for (const auto &pt : p.seqWriteNt) {
        out += strprintf("  %2u threads: %s\n", pt.threads,
                         formatBandwidth(pt.bandwidth).c_str());
    }
    out += strprintf("  peak %s at %u threads\n",
                     formatBandwidth(p.peakWriteBandwidth).c_str(),
                     p.writePeakThreads);
    out += strprintf(
        "media amplification: random 64 B reads %.2fx, random 64 B "
        "writes %.2fx\n",
        p.randomRead64Amplification, p.randomWrite64Amplification);
    out += strprintf(
        "2LM clean read-miss stream: %s (%.0f%% of 1LM), "
        "amplification %.2f\n",
        formatBandwidth(p.twoLmCleanReadMissBandwidth).c_str(),
        100.0 * p.readEfficiency(), p.twoLmReadMissAmplification);
    out += strprintf(
        "2LM dirty write-miss stream: %s (%.0f%% of 1LM), "
        "amplification %.2f\n",
        formatBandwidth(p.twoLmDirtyWriteMissBandwidth).c_str(),
        100.0 * p.writeEfficiency(), p.twoLmWriteMissAmplification);
    return out;
}

} // namespace nvsim::profile
