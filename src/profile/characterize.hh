/**
 * @file
 * System characterization harness, in the spirit of the profiler +
 * NVRAM-simulator methodology of Wang et al. (MICRO'20) that the
 * paper's related work points to for future hardware/software
 * co-design: sweep a configured machine with directed microbenchmarks
 * and produce a compact profile of its memory behavior — peak
 * bandwidths, thread-scaling knees, media amplification factors, and
 * the 2LM miss penalties of Table I.
 *
 * Used three ways: as a library API for tools, as the calibration
 * gate in the test suite (the profile must match the paper's headline
 * numbers), and by the `characterize` example binary.
 */

#ifndef NVSIM_PROFILE_CHARACTERIZE_HH
#define NVSIM_PROFILE_CHARACTERIZE_HH

#include <string>
#include <vector>

#include "sys/config.hh"

namespace nvsim::profile
{

/** One point of a thread-scaling sweep. */
struct ScalingPoint
{
    unsigned threads = 0;
    double bandwidth = 0;  //!< bytes/second
};

/** Compact profile of one configured machine. */
struct SystemProfile
{
    /** 1LM NVRAM sweeps. */
    std::vector<ScalingPoint> seqRead;
    std::vector<ScalingPoint> seqWriteNt;
    std::vector<ScalingPoint> randRead64;

    double peakReadBandwidth = 0;       //!< best sequential read
    double peakWriteBandwidth = 0;      //!< best sequential NT write
    unsigned readSaturationThreads = 0; //!< knee of the read curve
    unsigned writePeakThreads = 0;      //!< argmax of the write curve

    /** Media amplification measured from device counters. */
    double randomRead64Amplification = 0;
    double randomWrite64Amplification = 0;

    /** 2LM: miss-stream bandwidths and amplifications. */
    double twoLmCleanReadMissBandwidth = 0;
    double twoLmDirtyWriteMissBandwidth = 0;
    double twoLmReadMissAmplification = 0;
    double twoLmWriteMissAmplification = 0;

    /** 2LM vs 1LM efficiency (the paper's 60% / 72% numbers). */
    double readEfficiency() const;
    double writeEfficiency() const;
};

/** Thread counts used by the sweeps. */
inline const std::vector<unsigned> kSweepThreads{1, 2, 4, 8, 16, 24};

/**
 * Run the characterization sweeps against a machine built from
 * @p config (its mode fields are overridden per experiment).
 * @p array_bytes sets the sweep array size (scaled); larger arrays
 * sharpen steady-state numbers at more runtime.
 */
SystemProfile characterize(SystemConfig config,
                           Bytes array_bytes = 16 * kMiB);

/** Human-readable multi-line report. */
std::string report(const SystemProfile &profile);

} // namespace nvsim::profile

#endif // NVSIM_PROFILE_CHARACTERIZE_HH
